// Package health is the node-health daemon of the autonomous
// health + remediation loop: it watches per-NIC error counters and
// per-link state on the virtual clock, detects degrading nodes
// (threshold + EWMA over error rates, with port-down as a hard fault)
// and flapping links (EWMA over state transitions), and cordons
// degrading nodes through the typed k8s.Client exactly the way a real
// node-problem-detector would — by marking Node.Spec.Unschedulable and
// annotating the reason, leaving the fix to internal/remediate.
//
// The daemon is strictly opt-in: nothing in the stack constructs one
// unless a scenario enables its `health:` section (or an operator
// attaches one interactively), so runs without it draw exactly the
// same random-number stream as before the package existed.
package health

import (
	"fmt"
	"sort"
	"time"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

// AnnotationReason is set on a Node the daemon cordons; its value names
// the detection that tripped. internal/remediate only adopts nodes
// carrying this annotation, so operator cordons stay manual.
const AnnotationReason = "health.shs/reason"

// Counters is the per-node NIC error-counter registry the daemon polls.
// The simulated CXI device does not model CRC/retry errors natively, so
// fault injectors (the scenario `slow_drain_nic` event, the fuzzer)
// account errors here and the daemon observes deltas per tick — the
// same contract as reading a real NIC's error counters from sysfs.
type Counters struct {
	errors map[string]uint64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters { return &Counters{errors: make(map[string]uint64)} }

// AddErrors accumulates n errors against a node's NIC.
func (c *Counters) AddErrors(node string, n uint64) { c.errors[node] += n }

// Errors returns the cumulative error count for a node.
func (c *Counters) Errors(node string) uint64 { return c.errors[node] }

// Reset zeroes a node's counter (hardware replacement installs a fresh
// NIC). The daemon rebaselines on the next tick.
func (c *Counters) Reset(node string) { delete(c.errors, node) }

// Config tunes detection. Rates are per second of virtual time.
type Config struct {
	// Interval is the poll period (the daemon's tick).
	Interval sim.Duration
	// ErrorRateThreshold is the EWMA error rate (errors/s) above which a
	// node counts as degrading on that tick.
	ErrorRateThreshold float64
	// EWMAAlpha weights the newest tick's rate sample (0 < alpha <= 1).
	EWMAAlpha float64
	// FlapThreshold is the EWMA link state-transition rate
	// (transitions/s) above which a link is declared flapping. At the
	// default interval a single clean failure peaks below it and decays;
	// a second transition within a few ticks crosses it.
	FlapThreshold float64
	// DegradeTicks is how many consecutive over-threshold ticks cordon a
	// node; >1 keeps one-tick bursts from triggering remediation.
	DegradeTicks int
	// StableTicks is how many consecutive quiet ticks (link up, no
	// transitions, EWMA back under threshold) clear a flapping link.
	StableTicks int
}

// DefaultConfig returns detection tuning that flags a sustained
// slow-drain NIC within a few ticks and a flapping trunk on its second
// transition, while a clean single failure never trips the flap
// detector.
func DefaultConfig() Config {
	return Config{
		Interval:           100 * time.Millisecond,
		ErrorRateThreshold: 50,
		EWMAAlpha:          0.5,
		FlapThreshold:      6,
		DegradeTicks:       2,
		StableTicks:        5,
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	def := DefaultConfig()
	if out.Interval <= 0 {
		out.Interval = def.Interval
	}
	if out.ErrorRateThreshold <= 0 {
		out.ErrorRateThreshold = def.ErrorRateThreshold
	}
	if out.EWMAAlpha <= 0 || out.EWMAAlpha > 1 {
		out.EWMAAlpha = def.EWMAAlpha
	}
	if out.FlapThreshold <= 0 {
		out.FlapThreshold = def.FlapThreshold
	}
	if out.DegradeTicks <= 0 {
		out.DegradeTicks = def.DegradeTicks
	}
	if out.StableTicks <= 0 {
		out.StableTicks = def.StableTicks
	}
	return out
}

// NodeState is the daemon's view of one node.
type NodeState int

// Node states.
const (
	NodeHealthy NodeState = iota
	NodeDegrading
	NodeCordonedState
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case NodeDegrading:
		return "degrading"
	case NodeCordonedState:
		return "cordoned"
	default:
		return "healthy"
	}
}

// EventKind classifies daemon events.
type EventKind int

// Event kinds.
const (
	// NodeDegraded fires on the first over-threshold tick.
	NodeDegraded EventKind = iota
	// NodeCordoned fires once the cordon write is issued.
	NodeCordoned
	// NodeRecovered fires when a degrading (not yet cordoned) node goes
	// quiet again.
	NodeRecovered
	// LinkFlapping fires when a link's transition EWMA crosses the
	// threshold; latched until LinkRecovered.
	LinkFlapping
	// LinkRecovered fires after StableTicks quiet ticks on a latched link.
	LinkRecovered
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case NodeDegraded:
		return "node-degraded"
	case NodeCordoned:
		return "node-cordoned"
	case NodeRecovered:
		return "node-recovered"
	case LinkFlapping:
		return "link-flapping"
	case LinkRecovered:
		return "link-recovered"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one detection the daemon emits through OnEvent.
type Event struct {
	Time sim.Time
	Kind EventKind
	// Node is set for node events, Link ("trunk:i-j" / "global:i-j") for
	// link events.
	Node   string
	Link   string
	Detail string
}

// NodeInfo names one monitored node and its fabric address.
type NodeInfo struct {
	Name string
	Addr fabric.Addr
}

type nodeState struct {
	info       NodeInfo
	state      NodeState
	ewma       float64
	lastErrors uint64
	overTicks  int
}

type linkState struct {
	key         string
	down        bool
	ewma        float64
	flapping    bool
	stableTicks int
}

// Daemon polls node and link health every Interval of virtual time.
type Daemon struct {
	eng      *sim.Engine
	cfg      Config
	cli      *k8s.Client
	topo     *fabric.Topology
	counters *Counters
	nodes    []*nodeState
	byName   map[string]*nodeState
	links    map[string]*linkState
	linkKeys []string
	onEvent  func(Event)
	tick     sim.Event
	running  bool
}

// New builds a daemon over the given nodes. It does not start ticking
// until Start.
func New(eng *sim.Engine, cfg Config, cli *k8s.Client, topo *fabric.Topology, counters *Counters, nodes []NodeInfo) *Daemon {
	d := &Daemon{
		eng:      eng,
		cfg:      cfg.withDefaults(),
		cli:      cli,
		topo:     topo,
		counters: counters,
		byName:   make(map[string]*nodeState, len(nodes)),
		links:    make(map[string]*linkState),
	}
	for _, n := range nodes {
		st := &nodeState{info: n, lastErrors: counters.Errors(n.Name)}
		d.nodes = append(d.nodes, st)
		d.byName[n.Name] = st
	}
	return d
}

// OnEvent registers the single event sink (Ops, telemetry bridge).
func (d *Daemon) OnEvent(fn func(Event)) { d.onEvent = fn }

// Interval returns the effective poll period.
func (d *Daemon) Interval() sim.Duration { return d.cfg.Interval }

// Start begins ticking on the virtual clock.
func (d *Daemon) Start() {
	if d.running {
		return
	}
	d.running = true
	d.tick = d.eng.AfterCall(d.cfg.Interval, daemonTick, d)
}

// Stop cancels the tick.
func (d *Daemon) Stop() {
	if !d.running {
		return
	}
	d.running = false
	d.tick.Cancel()
}

// daemonTick is closure-free so the recurring tick reuses the engine's
// pooled event arena (see internal/sim).
func daemonTick(arg any) {
	d := arg.(*Daemon)
	if !d.running {
		return
	}
	d.poll()
	d.tick = d.eng.AfterCall(d.cfg.Interval, daemonTick, d)
}

func (d *Daemon) emit(kind EventKind, node, link, detail string) {
	if d.onEvent == nil {
		return
	}
	d.onEvent(Event{Time: d.eng.Now(), Kind: kind, Node: node, Link: link, Detail: detail})
}

func (d *Daemon) poll() {
	secs := float64(d.cfg.Interval) / float64(time.Second)
	for _, st := range d.nodes {
		d.pollNode(st, secs)
	}
	d.pollLinks(secs)
}

func (d *Daemon) pollNode(st *nodeState, secs float64) {
	if st.state == NodeCordonedState {
		// Hands off until remediation replaces the hardware and calls
		// NodeReplaced; polling a cordoned node would double-report.
		return
	}
	cur := d.counters.Errors(st.info.Name)
	var delta uint64
	if cur >= st.lastErrors {
		delta = cur - st.lastErrors
	} // else: counter was reset underneath us — rebaseline silently
	st.lastErrors = cur
	rate := float64(delta) / secs
	st.ewma = d.cfg.EWMAAlpha*rate + (1-d.cfg.EWMAAlpha)*st.ewma

	portDown := d.topo.PortDown(st.info.Addr)
	over := st.ewma > d.cfg.ErrorRateThreshold || portDown
	if !over {
		st.overTicks = 0
		if st.state == NodeDegrading && st.ewma < d.cfg.ErrorRateThreshold/2 {
			st.state = NodeHealthy
			d.emit(NodeRecovered, st.info.Name, "", "error rate back under threshold")
		}
		return
	}
	st.overTicks++
	if st.state == NodeHealthy {
		st.state = NodeDegrading
		d.emit(NodeDegraded, st.info.Name, "", d.overDetail(st, portDown))
	}
	if st.overTicks >= d.cfg.DegradeTicks {
		d.cordon(st, d.overDetail(st, portDown))
	}
}

func (d *Daemon) overDetail(st *nodeState, portDown bool) string {
	if portDown {
		return "nic port down"
	}
	return fmt.Sprintf("error rate %.0f/s over %.0f/s", st.ewma, d.cfg.ErrorRateThreshold)
}

func (d *Daemon) cordon(st *nodeState, reason string) {
	st.state = NodeCordonedState
	name := st.info.Name
	d.cli.UpdateWithRetry(k8s.KindNode, "", name, func(obj k8s.Object) bool {
		n := obj.(*k8s.Node)
		if n.Spec.Unschedulable {
			return false
		}
		n.Spec.Unschedulable = true
		if n.Meta.Annotations == nil {
			n.Meta.Annotations = make(map[string]string, 1)
		}
		n.Meta.Annotations[AnnotationReason] = reason
		return true
	})
	d.emit(NodeCordoned, name, "", reason)
}

// pollLinks folds both directions of each trunk into one canonical key
// (SetTrunkDown flips both together) and runs EWMA flap detection over
// state transitions.
func (d *Daemon) pollLinks(secs float64) {
	for _, li := range d.topo.Links() {
		if li.ID.From > li.ID.To {
			continue
		}
		key := linkKey(li)
		st, ok := d.links[key]
		if !ok {
			st = &linkState{key: key, down: li.Down}
			d.links[key] = st
			d.linkKeys = append(d.linkKeys, key)
			sort.Strings(d.linkKeys)
		}
		transitions := 0
		if li.Down != st.down {
			transitions = 1
			st.down = li.Down
		}
		rate := float64(transitions) / secs
		st.ewma = d.cfg.EWMAAlpha*rate + (1-d.cfg.EWMAAlpha)*st.ewma
		if !st.flapping && st.ewma > d.cfg.FlapThreshold {
			st.flapping = true
			st.stableTicks = 0
			d.emit(LinkFlapping, "", key, fmt.Sprintf("transition rate %.1f/s over %.1f/s", st.ewma, d.cfg.FlapThreshold))
		}
		if st.flapping {
			if transitions == 0 && !li.Down && st.ewma < d.cfg.FlapThreshold {
				st.stableTicks++
				if st.stableTicks >= d.cfg.StableTicks {
					st.flapping = false
					st.stableTicks = 0
					d.emit(LinkRecovered, "", key, "stable")
				}
			} else {
				st.stableTicks = 0
			}
		}
	}
}

func linkKey(li fabric.LinkInfo) string {
	kind := "trunk"
	if li.Kind == fabric.LinkGlobal {
		kind = "global"
	}
	return fmt.Sprintf("%s:%d-%d", kind, li.ID.From, li.ID.To)
}

// NodeReplaced rebaselines a node after remediation swapped its
// hardware: state back to healthy, EWMA cleared, counter baseline
// re-read. Safe to call for unknown nodes.
func (d *Daemon) NodeReplaced(name string) {
	st, ok := d.byName[name]
	if !ok {
		return
	}
	st.state = NodeHealthy
	st.ewma = 0
	st.overTicks = 0
	st.lastErrors = d.counters.Errors(name)
}

// NodeSnapshot is one node's health for operators and telemetry.
type NodeSnapshot struct {
	Name      string
	State     NodeState
	ErrorRate float64 // current EWMA, errors/s
}

// LinkSnapshot is one link's flap state.
type LinkSnapshot struct {
	Key      string
	Down     bool
	Flapping bool
}

// Snapshot returns deterministic per-node (declaration order) and
// per-link (sorted key) views.
func (d *Daemon) Snapshot() ([]NodeSnapshot, []LinkSnapshot) {
	ns := make([]NodeSnapshot, 0, len(d.nodes))
	for _, st := range d.nodes {
		ns = append(ns, NodeSnapshot{Name: st.info.Name, State: st.state, ErrorRate: st.ewma})
	}
	ls := make([]LinkSnapshot, 0, len(d.linkKeys))
	for _, k := range d.linkKeys {
		st := d.links[k]
		ls = append(ls, LinkSnapshot{Key: st.key, Down: st.down, Flapping: st.flapping})
	}
	return ns, ls
}
