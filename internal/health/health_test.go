package health_test

import (
	"testing"
	"time"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/health"
	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/sim"
	"github.com/caps-sim/shs-k8s/internal/stack"
)

func newStack(t *testing.T, nodes int, spec fabric.TopologySpec) *stack.Stack {
	t.Helper()
	opts := stack.DefaultOptions()
	opts.Nodes = nodes
	opts.VNIService = false
	opts.Topology = spec
	return stack.New(opts)
}

func daemonOver(s *stack.Stack, cfg health.Config, counters *health.Counters) *health.Daemon {
	infos := make([]health.NodeInfo, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		infos = append(infos, health.NodeInfo{Name: n.Name, Addr: n.Device.Addr()})
	}
	return health.New(s.Eng, cfg, s.Cluster.Client, s.Topo, counters, infos)
}

// TestSlowDrainCordons drives a sustained error rate on one node's NIC
// and expects the daemon to degrade then cordon it through the client,
// leaving the other node untouched.
func TestSlowDrainCordons(t *testing.T) {
	s := newStack(t, 2, fabric.DefaultTopologySpec())
	counters := health.NewCounters()
	cfg := health.DefaultConfig()
	d := daemonOver(s, cfg, counters)

	var events []health.Event
	d.OnEvent(func(ev health.Event) { events = append(events, ev) })
	d.Start()

	// 100 errors per 10ms = 10_000 errors/s, far over the 50/s threshold.
	stop := s.Eng.Now().Add(sim.Duration(2 * time.Second))
	var inject func()
	inject = func() {
		if s.Eng.Now() >= stop {
			return
		}
		counters.AddErrors("node0", 100)
		s.Eng.After(sim.Duration(10*time.Millisecond), inject)
	}
	s.Eng.After(0, inject)
	s.Eng.RunFor(sim.Duration(3 * time.Second))

	var sawDegraded, sawCordoned bool
	for _, ev := range events {
		switch ev.Kind {
		case health.NodeDegraded:
			sawDegraded = true
			if ev.Node != "node0" {
				t.Fatalf("degraded %q, want node0", ev.Node)
			}
		case health.NodeCordoned:
			sawCordoned = true
		}
	}
	if !sawDegraded || !sawCordoned {
		t.Fatalf("events = %v, want degraded then cordoned", events)
	}

	obj, ok := s.Cluster.Client.Get(k8s.KindNode, "", "node0")
	if !ok {
		t.Fatal("node0 missing")
	}
	node := obj.(*k8s.Node)
	if !node.Spec.Unschedulable {
		t.Fatal("node0 not cordoned in the API")
	}
	if node.Meta.Annotations[health.AnnotationReason] == "" {
		t.Fatal("cordoned node carries no reason annotation")
	}
	if obj, _ := s.Cluster.Client.Get(k8s.KindNode, "", "node1"); obj.(*k8s.Node).Spec.Unschedulable {
		t.Fatal("healthy node1 was cordoned")
	}

	ns, _ := d.Snapshot()
	for _, n := range ns {
		want := health.NodeHealthy
		if n.Name == "node0" {
			want = health.NodeCordonedState
		}
		if n.State != want {
			t.Fatalf("snapshot %s = %v, want %v", n.Name, n.State, want)
		}
	}
}

// TestPortDownCordons treats an administratively downed NIC port as a
// hard fault: cordon within DegradeTicks polls, no error counters
// involved.
func TestPortDownCordons(t *testing.T) {
	s := newStack(t, 2, fabric.DefaultTopologySpec())
	d := daemonOver(s, health.DefaultConfig(), health.NewCounters())
	var cordonAt sim.Time
	d.OnEvent(func(ev health.Event) {
		if ev.Kind == health.NodeCordoned {
			cordonAt = ev.Time
		}
	})
	d.Start()

	start := s.Eng.Now()
	if err := s.FailNIC("node1"); err != nil {
		t.Fatal(err)
	}
	s.Eng.RunFor(sim.Duration(time.Second))
	if cordonAt == 0 {
		t.Fatal("port-down node never cordoned")
	}
	detect := cordonAt.Sub(start)
	// DegradeTicks=2 at a 100ms interval: detection lands on the second
	// poll, ≤ 300ms after the fault even with tick phase.
	if detect > sim.Duration(300*time.Millisecond) {
		t.Fatalf("detect latency %v, want <= 300ms", detect)
	}
}

// TestFlapDetection expects a flapping trunk to be flagged on its
// second transition and cleared after the stable window, while a single
// clean failure never trips the detector.
func TestFlapDetection(t *testing.T) {
	spec := fabric.TopologySpec{Groups: 1, SwitchesPerGroup: 2, NodesPerSwitch: 1}
	s := newStack(t, 2, spec)
	d := daemonOver(s, health.DefaultConfig(), health.NewCounters())
	var flaps, recovers []health.Event
	d.OnEvent(func(ev health.Event) {
		switch ev.Kind {
		case health.LinkFlapping:
			flaps = append(flaps, ev)
		case health.LinkRecovered:
			recovers = append(recovers, ev)
		}
	})
	d.Start()

	// Three down/up cycles, 150ms per half-period.
	half := sim.Duration(150 * time.Millisecond)
	for i := 0; i < 3; i++ {
		at := sim.Duration(2*i) * half
		s.Eng.After(at, func() { s.FailTrunk(0, 1) })
		s.Eng.After(at+half, func() { s.RecoverTrunk(0, 1) })
	}
	s.Eng.RunFor(sim.Duration(5 * time.Second))

	if len(flaps) != 1 {
		t.Fatalf("flap events = %d, want exactly 1 (latched)", len(flaps))
	}
	if flaps[0].Link != "trunk:0-1" {
		t.Fatalf("flagged link %q, want trunk:0-1", flaps[0].Link)
	}
	if len(recovers) != 1 {
		t.Fatalf("recover events = %d, want 1", len(recovers))
	}
	if recovers[0].Time <= flaps[0].Time {
		t.Fatal("recovery before detection")
	}

	// A clean single failure on a fresh stack must not trip the detector.
	s2 := newStack(t, 2, spec)
	d2 := daemonOver(s2, health.DefaultConfig(), health.NewCounters())
	tripped := false
	d2.OnEvent(func(ev health.Event) {
		if ev.Kind == health.LinkFlapping {
			tripped = true
		}
	})
	d2.Start()
	s2.FailTrunk(0, 1)
	s2.Eng.RunFor(sim.Duration(2 * time.Second))
	if tripped {
		t.Fatal("single clean failure flagged as flapping")
	}
}

// TestNodeReplacedRebaselines expects NodeReplaced to clear daemon state
// so a remediated node is not immediately re-cordoned.
func TestNodeReplacedRebaselines(t *testing.T) {
	s := newStack(t, 2, fabric.DefaultTopologySpec())
	counters := health.NewCounters()
	d := daemonOver(s, health.DefaultConfig(), counters)
	cordons := 0
	d.OnEvent(func(ev health.Event) {
		if ev.Kind == health.NodeCordoned {
			cordons++
		}
	})
	d.Start()

	counters.AddErrors("node0", 1_000_000)
	s.Eng.RunFor(sim.Duration(time.Second))
	if cordons != 1 {
		t.Fatalf("cordons = %d, want 1", cordons)
	}

	// Remediation: counter reset + rebaseline; uncordon is the
	// remediate controller's job, here we only check the daemon side.
	counters.Reset("node0")
	d.NodeReplaced("node0")
	s.Eng.RunFor(sim.Duration(2 * time.Second))
	if cordons != 1 {
		t.Fatalf("replaced node re-cordoned (cordons = %d)", cordons)
	}
	ns, _ := d.Snapshot()
	if ns[0].State != health.NodeHealthy {
		t.Fatalf("node0 state %v after replace, want healthy", ns[0].State)
	}
}
