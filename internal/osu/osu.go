// Package osu reimplements the two OSU micro-benchmarks the paper's
// communication evaluation uses (§IV-A): osu_bw (window-based streaming
// bandwidth) and osu_latency (ping-pong latency), faithful to the
// algorithms of the OSU Micro-Benchmark suite v7.3.
package osu

import (
	"github.com/caps-sim/shs-k8s/internal/mpi"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

// DefaultSizes are the message sizes of the paper's x axes: 1 B to 1 MB in
// powers of two.
func DefaultSizes() []int {
	var out []int
	for s := 1; s <= 1<<20; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// Options configure a run.
type Options struct {
	Sizes []int
	// Iterations per size. The paper uses 10 000 (bandwidth) and 20 000
	// (latency); the simulated benchmarks default lower because each
	// iteration is statistically identical modulo seeded jitter — see
	// EXPERIMENTS.md. PaperFidelity returns options with the paper's
	// values for full fidelity.
	Iterations int
	// Warmup iterations excluded from timing (OSU skips the first runs).
	Warmup int
	// WindowSize is the number of in-flight sends per bandwidth window
	// (OSU default 64).
	WindowSize int
}

// DefaultBwOptions returns osu_bw defaults.
func DefaultBwOptions() Options {
	return Options{Sizes: DefaultSizes(), Iterations: 64, Warmup: 8, WindowSize: 64}
}

// DefaultLatencyOptions returns osu_latency defaults.
func DefaultLatencyOptions() Options {
	return Options{Sizes: DefaultSizes(), Iterations: 200, Warmup: 16}
}

// The paper's per-size iteration counts (§IV-A): 10 000 for the bandwidth
// benchmark, 20 000 for latency.
const (
	PaperBwIterations      = 10000
	PaperLatencyIterations = 20000
)

// PaperFidelity returns a copy of o with the paper's iteration count: the
// documented 10 000 for bandwidth-shaped options (a windowed benchmark,
// WindowSize > 0) and 20 000 for latency-shaped ones. Expect full-fidelity
// runs to take proportionally longer wall time; see EXPERIMENTS.md on
// iteration scaling.
func (o Options) PaperFidelity() Options {
	if o.WindowSize > 0 {
		o.Iterations = PaperBwIterations
	} else {
		o.Iterations = PaperLatencyIterations
	}
	return o
}

// Point is one (size, value) measurement.
type Point struct {
	Size  int
	Value float64 // MB/s for bandwidth, microseconds for latency
}

// Bandwidth runs osu_bw over the communicator and calls done with one point
// per size. Algorithm per OSU: for each iteration the sender posts
// WindowSize non-blocking sends, waits for all local completions, then
// waits for a 4-byte ack from the receiver; the receiver posts WindowSize
// receives and answers with the ack. Bandwidth = bytes moved / elapsed.
func Bandwidth(eng *sim.Engine, comm *mpi.Comm, opts Options, done func([]Point)) {
	sender, receiver := comm.Ranks[0], comm.Ranks[1]
	var results []Point
	var runSize func(si int)
	runSize = func(si int) {
		if si >= len(opts.Sizes) {
			done(results)
			return
		}
		size := opts.Sizes[si]
		var start sim.Time
		iter := 0
		var window func()
		window = func() {
			if iter == opts.Warmup {
				start = eng.Now()
			}
			if iter >= opts.Warmup+opts.Iterations {
				elapsed := eng.Now().Sub(start).Seconds()
				bytes := float64(size) * float64(opts.WindowSize) * float64(opts.Iterations)
				results = append(results, Point{Size: size, Value: bytes / elapsed / 1e6})
				runSize(si + 1)
				return
			}
			iter++
			// Receiver posts the window and the ack.
			recvLeft := opts.WindowSize
			for i := 0; i < opts.WindowSize; i++ {
				receiver.Recv(func(int) {
					recvLeft--
					if recvLeft == 0 {
						receiver.Isend(4, nil) // ack
					}
				})
			}
			// Sender posts the window, waits for completions + ack.
			sendLeft := opts.WindowSize
			ackSeen := false
			next := func() {
				if sendLeft == 0 && ackSeen {
					window()
				}
			}
			sender.Recv(func(int) { ackSeen = true; next() })
			for i := 0; i < opts.WindowSize; i++ {
				sender.Isend(size, func() {
					sendLeft--
					next()
				})
			}
		}
		window()
	}
	runSize(0)
}

// Latency runs osu_latency: a strict ping-pong; latency is half the average
// round-trip time.
func Latency(eng *sim.Engine, comm *mpi.Comm, opts Options, done func([]Point)) {
	ping, pong := comm.Ranks[0], comm.Ranks[1]
	var results []Point
	var runSize func(si int)
	runSize = func(si int) {
		if si >= len(opts.Sizes) {
			done(results)
			return
		}
		size := opts.Sizes[si]
		var start sim.Time
		iter := 0
		var round func()
		round = func() {
			if iter == opts.Warmup {
				start = eng.Now()
			}
			if iter >= opts.Warmup+opts.Iterations {
				elapsed := eng.Now().Sub(start)
				lat := elapsed.Seconds() * 1e6 / float64(opts.Iterations) / 2
				results = append(results, Point{Size: size, Value: lat})
				runSize(si + 1)
				return
			}
			iter++
			pong.Recv(func(sz int) { pong.Isend(sz, nil) })
			ping.SendRecv(size, func(int) { round() })
		}
		round()
	}
	runSize(0)
}

// BiBandwidth runs osu_bibw: both ranks stream windows at each other
// simultaneously; the figure of merit is the combined bidirectional
// bandwidth. Not a paper figure, but part of the OSU suite the paper
// deploys; used by the extension benchmarks.
func BiBandwidth(eng *sim.Engine, comm *mpi.Comm, opts Options, done func([]Point)) {
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	var results []Point
	var runSize func(si int)
	runSize = func(si int) {
		if si >= len(opts.Sizes) {
			done(results)
			return
		}
		size := opts.Sizes[si]
		var start sim.Time
		iter := 0
		var window func()
		window = func() {
			if iter == opts.Warmup {
				start = eng.Now()
			}
			if iter >= opts.Warmup+opts.Iterations {
				elapsed := eng.Now().Sub(start).Seconds()
				bytes := 2 * float64(size) * float64(opts.WindowSize) * float64(opts.Iterations)
				results = append(results, Point{Size: size, Value: bytes / elapsed / 1e6})
				runSize(si + 1)
				return
			}
			iter++
			// Both sides post a full window of sends and receives, then
			// exchange 4-byte fin messages.
			pending := 2 // one fin per direction
			next := func() {
				pending--
				if pending == 0 {
					window()
				}
			}
			for _, pair := range [][2]*mpi.Rank{{r0, r1}, {r1, r0}} {
				tx, rx := pair[0], pair[1]
				recvLeft := opts.WindowSize
				for i := 0; i < opts.WindowSize; i++ {
					rx.Recv(func(int) {
						recvLeft--
						if recvLeft == 0 {
							rx.Isend(4, nil)
						}
					})
				}
				sendLeft := opts.WindowSize
				finSeen := false
				check := func() {
					if sendLeft == 0 && finSeen {
						next()
					}
				}
				tx.Recv(func(int) { finSeen = true; check() })
				for i := 0; i < opts.WindowSize; i++ {
					tx.Isend(size, func() {
						sendLeft--
						check()
					})
				}
			}
		}
		window()
	}
	runSize(0)
}
