package osu

import (
	"testing"

	"github.com/caps-sim/shs-k8s/internal/cxi"
	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/libfabric"
	"github.com/caps-sim/shs-k8s/internal/mpi"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

func newComm(t *testing.T, seed int64) (*sim.Engine, *mpi.Comm) {
	t.Helper()
	eng := sim.NewEngine(seed)
	kern := nsmodel.NewKernel()
	sw := fabric.NewSwitch("s", eng, fabric.DefaultConfig())
	devA := cxi.NewDevice("cxi0", eng, kern, sw, cxi.DefaultDeviceConfig())
	devB := cxi.NewDevice("cxi1", eng, kern, sw, cxi.DefaultDeviceConfig())
	pa, _ := kern.Spawn("rank0", 0, 0, 0, 0)
	pb, _ := kern.Spawn("rank1", 0, 0, 0, 0)
	da, err := libfabric.OpenDomain(eng, libfabric.Info{Device: devA, Caller: pa.PID, VNI: 1, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	db, err := libfabric.OpenDomain(eng, libfabric.Info{Device: devB, Caller: pb.PID, VNI: 1, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := mpi.Connect(eng, da, db)
	if err != nil {
		t.Fatal(err)
	}
	return eng, comm
}

func smallOpts(base Options) Options {
	base.Sizes = []int{1, 64, 4096, 65536, 1 << 20}
	base.Iterations = 20
	base.Warmup = 2
	return base
}

func TestBandwidthCurveShape(t *testing.T) {
	eng, comm := newComm(t, 1)
	var pts []Point
	Bandwidth(eng, comm, smallOpts(DefaultBwOptions()), func(p []Point) { pts = p })
	eng.Run()
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Monotone non-decreasing bandwidth with message size.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Errorf("bw not monotone: %v", pts)
			break
		}
	}
	// Regime checks against the paper's Figure 5: single-digit MB/s at
	// 1 B, >10 GB/s at 1 MB (line rate 200 Gbps = 25 GB/s ceiling).
	if pts[0].Value < 0.5 || pts[0].Value > 20 {
		t.Errorf("bw(1B) = %.2f MB/s, expected O(1) MB/s", pts[0].Value)
	}
	last := pts[len(pts)-1].Value
	if last < 10000 || last > 25000 {
		t.Errorf("bw(1MB) = %.0f MB/s, expected 10-25 GB/s", last)
	}
}

func TestLatencyCurveShape(t *testing.T) {
	eng, comm := newComm(t, 1)
	var pts []Point
	Latency(eng, comm, smallOpts(DefaultLatencyOptions()), func(p []Point) { pts = p })
	eng.Run()
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Errorf("latency not monotone: %v", pts)
			break
		}
	}
	// Paper Figure 7 regime: ~2 µs small-message latency, ~100 µs at 1 MB.
	if pts[0].Value < 1.0 || pts[0].Value > 4.0 {
		t.Errorf("latency(1B) = %.2f µs, expected ~2 µs", pts[0].Value)
	}
	last := pts[len(pts)-1].Value
	if last < 50 || last > 200 {
		t.Errorf("latency(1MB) = %.1f µs, expected ~100 µs", last)
	}
}

func TestRunToRunJitterWithinOnePercent(t *testing.T) {
	// The paper attributes its ≤1% overhead to run-to-run variability;
	// two seeds must differ but stay within a few percent.
	run := func(seed int64) []Point {
		eng, comm := newComm(t, seed)
		var pts []Point
		opts := smallOpts(DefaultBwOptions())
		Bandwidth(eng, comm, opts, func(p []Point) { pts = p })
		eng.Run()
		return pts
	}
	a, b := run(1), run(2)
	differ := false
	for i := range a {
		rel := (a[i].Value - b[i].Value) / a[i].Value
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Errorf("size %d: runs differ by %.1f%%", a[i].Size, rel*100)
		}
		if a[i].Value != b[i].Value {
			differ = true
		}
	}
	if !differ {
		t.Error("different seeds produced identical curves — jitter absent")
	}
}

func TestDefaultSizes(t *testing.T) {
	s := DefaultSizes()
	if s[0] != 1 || s[len(s)-1] != 1<<20 || len(s) != 21 {
		t.Errorf("sizes = %v", s)
	}
}

func TestBiBandwidthExceedsUnidirectional(t *testing.T) {
	run := func(bi bool) float64 {
		eng, comm := newComm(t, 3)
		opts := DefaultBwOptions()
		opts.Sizes = []int{1 << 20}
		opts.Iterations, opts.Warmup = 10, 2
		var pts []Point
		if bi {
			BiBandwidth(eng, comm, opts, func(p []Point) { pts = p })
		} else {
			Bandwidth(eng, comm, opts, func(p []Point) { pts = p })
		}
		eng.Run()
		if len(pts) != 1 {
			t.Fatalf("points = %d", len(pts))
		}
		return pts[0].Value
	}
	uni := run(false)
	bi := run(true)
	// Full duplex: bidirectional bandwidth should approach 2x.
	if bi < uni*1.5 {
		t.Errorf("bibw = %.0f MB/s vs bw %.0f MB/s — links not full duplex?", bi, uni)
	}
	if bi > uni*2.2 {
		t.Errorf("bibw = %.0f MB/s exceeds 2x line rate", bi)
	}
}

// TestPaperFidelityIterations pins the documented §IV-A iteration counts:
// 10 000 per size for osu_bw, 20 000 for osu_latency.
func TestPaperFidelityIterations(t *testing.T) {
	if PaperBwIterations != 10000 || PaperLatencyIterations != 20000 {
		t.Errorf("paper constants drifted: bw %d, latency %d", PaperBwIterations, PaperLatencyIterations)
	}
	bw := DefaultBwOptions().PaperFidelity()
	if bw.Iterations != 10000 {
		t.Errorf("bandwidth fidelity iterations = %d, want 10000", bw.Iterations)
	}
	lat := DefaultLatencyOptions().PaperFidelity()
	if lat.Iterations != 20000 {
		t.Errorf("latency fidelity iterations = %d, want 20000", lat.Iterations)
	}
	// Everything but the iteration count is untouched.
	if bw.WindowSize != 64 || bw.Warmup != DefaultBwOptions().Warmup {
		t.Errorf("fidelity changed unrelated options: %+v", bw)
	}
	if len(bw.Sizes) != len(DefaultSizes()) {
		t.Errorf("fidelity changed sizes: %d", len(bw.Sizes))
	}
}
