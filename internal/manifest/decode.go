package manifest

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/sim"
	"github.com/caps-sim/shs-k8s/internal/vniapi"
)

// Parse reads YAML documents and returns the typed objects they declare.
// Supported kinds: Job (batch/v1, paper Listings 1 and 3) and VniClaim
// (paper Listing 2).
func Parse(r io.Reader) ([]k8s.Object, error) {
	docs, err := parseDocs(r)
	if err != nil {
		return nil, err
	}
	var out []k8s.Object
	for i, doc := range docs {
		obj, err := decode(doc)
		if err != nil {
			return nil, fmt.Errorf("manifest: document %d: %w", i+1, err)
		}
		out = append(out, obj)
	}
	return out, nil
}

func decode(doc *node) (k8s.Object, error) {
	kind := doc.str("kind")
	switch kind {
	case "Job":
		return decodeJob(doc)
	case "VniClaim":
		return decodeClaim(doc)
	case "":
		return nil, fmt.Errorf("missing kind")
	default:
		return nil, fmt.Errorf("unsupported kind %q", kind)
	}
}

func decodeMeta(doc *node, kind k8s.Kind) (k8s.Meta, error) {
	meta := k8s.Meta{Kind: kind}
	md := doc.get("metadata")
	if md == nil {
		return meta, fmt.Errorf("missing metadata")
	}
	meta.Name = md.str("name")
	if meta.Name == "" {
		return meta, fmt.Errorf("missing metadata.name")
	}
	meta.Namespace = md.str("namespace")
	if meta.Namespace == "" {
		meta.Namespace = "default"
	}
	if ann := md.get("annotations"); ann != nil && ann.isMap {
		meta.Annotations = make(map[string]string, len(ann.keys))
		for _, k := range ann.keys {
			meta.Annotations[k] = ann.child[k].scalar
		}
	}
	return meta, nil
}

func decodeJob(doc *node) (k8s.Object, error) {
	meta, err := decodeMeta(doc, k8s.KindJob)
	if err != nil {
		return nil, err
	}
	job := &k8s.Job{Meta: meta, Spec: k8s.JobSpec{Parallelism: 1}}
	spec := doc.get("spec")
	if spec != nil {
		if p := spec.str("parallelism"); p != "" {
			n, err := strconv.Atoi(p)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("invalid spec.parallelism %q", p)
			}
			job.Spec.Parallelism = n
		}
		if ttl := spec.str("ttlSecondsAfterFinished"); ttl != "" {
			n, err := strconv.Atoi(ttl)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("invalid spec.ttlSecondsAfterFinished %q", ttl)
			}
			job.Spec.DeleteAfterFinished = true
			job.Spec.TTLAfterFinished = sim.Duration(n) * time.Second
		}
		if tpl := spec.get("template", "spec"); tpl != nil {
			if g := tpl.str("terminationGracePeriodSeconds"); g != "" {
				n, err := strconv.Atoi(g)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("invalid terminationGracePeriodSeconds %q", g)
				}
				job.Spec.Template.TerminationGracePeriod = sim.Duration(n) * time.Second
			}
			if tpl.str("hostNetwork") == "true" {
				job.Spec.Template.HostNetwork = true
			}
			if c := tpl.get("containers"); c != nil && c.isMap {
				// Single-container model: take the image of the first
				// (and only) declared container.
				for _, k := range c.keys {
					if k == "image" {
						job.Spec.Template.Image = c.child[k].scalar
					}
				}
			}
		}
	}
	if job.Spec.Template.Image == "" {
		job.Spec.Template.Image = "alpine:latest"
	}
	// The paper's admission workload: echo-style near-instant commands.
	if job.Spec.Template.RunDuration == 0 {
		job.Spec.Template.RunDuration = 50 * time.Millisecond
	}
	return job, nil
}

func decodeClaim(doc *node) (k8s.Object, error) {
	meta, err := decodeMeta(doc, vniapi.KindVniClaim)
	if err != nil {
		return nil, err
	}
	claimName := doc.str("spec", "name")
	if claimName == "" {
		claimName = meta.Name
	}
	return &k8s.Custom{
		Meta: meta,
		Spec: map[string]string{vniapi.ClaimSpecName: claimName},
	}, nil
}
