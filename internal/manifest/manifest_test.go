package manifest

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/vniapi"
)

// listing1 is the paper's Listing 1: a job requesting a Per-Resource VNI.
const listing1 = `
apiVersion: batch/v1
kind: Job
metadata:
  name: vni-test-job
  annotations:
    vni: "true"
spec:
  template:
    spec:
      containers:
        image: alpine:latest
`

// listing2 is the paper's Listing 2: a VNI claim.
const listing2 = `
apiVersion: v1
kind: VniClaim
metadata:
  name: vni-claim-test
  namespace: vnitest
spec:
  name: test
`

// listing3 is the paper's Listing 3: a job redeeming the claim.
const listing3 = `
apiVersion: batch/v1
kind: Job
metadata:
  name: vni-test-job
  namespace: vnitest
  annotations:
    vni: vni-claim-test
spec:
  template:
    spec:
      containers:
        image: alpine:latest
`

func TestParseListing1(t *testing.T) {
	objs, err := Parse(strings.NewReader(listing1))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("objects = %d", len(objs))
	}
	job, ok := objs[0].(*k8s.Job)
	if !ok {
		t.Fatalf("object type %T", objs[0])
	}
	if job.Meta.Name != "vni-test-job" || job.Meta.Namespace != "default" {
		t.Errorf("meta = %+v", job.Meta)
	}
	requested, claim := vniapi.Requested(job.Meta.Annotations)
	if !requested || claim != "" {
		t.Errorf("annotations = %v", job.Meta.Annotations)
	}
	if job.Spec.Parallelism != 1 || job.Spec.Template.Image != "alpine:latest" {
		t.Errorf("spec = %+v", job.Spec)
	}
}

func TestParseListing2(t *testing.T) {
	objs, err := Parse(strings.NewReader(listing2))
	if err != nil {
		t.Fatal(err)
	}
	claim, ok := objs[0].(*k8s.Custom)
	if !ok || claim.Meta.Kind != vniapi.KindVniClaim {
		t.Fatalf("object = %+v", objs[0])
	}
	if claim.Meta.Namespace != "vnitest" || claim.Spec[vniapi.ClaimSpecName] != "test" {
		t.Errorf("claim = %+v", claim)
	}
}

func TestParseListing3(t *testing.T) {
	objs, err := Parse(strings.NewReader(listing3))
	if err != nil {
		t.Fatal(err)
	}
	job := objs[0].(*k8s.Job)
	requested, claim := vniapi.Requested(job.Meta.Annotations)
	if !requested || claim != "vni-claim-test" {
		t.Errorf("claim redemption annotation = %v", job.Meta.Annotations)
	}
}

func TestParseMultiDocument(t *testing.T) {
	combined := listing2 + "\n---\n" + listing3
	objs, err := Parse(strings.NewReader(combined))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objects = %d", len(objs))
	}
	if objs[0].GetMeta().Kind != vniapi.KindVniClaim || objs[1].GetMeta().Kind != k8s.KindJob {
		t.Errorf("kinds = %v, %v", objs[0].GetMeta().Kind, objs[1].GetMeta().Kind)
	}
}

func TestParseFullJobSpec(t *testing.T) {
	y := `
kind: Job
metadata:
  name: big
  namespace: t
spec:
  parallelism: 4
  ttlSecondsAfterFinished: 0
  template:
    spec:
      terminationGracePeriodSeconds: 25
      containers:
        image: osu:7.3
`
	objs, err := Parse(strings.NewReader(y))
	if err != nil {
		t.Fatal(err)
	}
	job := objs[0].(*k8s.Job)
	if job.Spec.Parallelism != 4 {
		t.Errorf("parallelism = %d", job.Spec.Parallelism)
	}
	if !job.Spec.DeleteAfterFinished || job.Spec.TTLAfterFinished != 0 {
		t.Errorf("ttl = %+v", job.Spec)
	}
	if job.Spec.Template.TerminationGracePeriod != 25*time.Second {
		t.Errorf("grace = %v", job.Spec.Template.TerminationGracePeriod)
	}
	if job.Spec.Template.Image != "osu:7.3" {
		t.Errorf("image = %q", job.Spec.Template.Image)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing kind":      "metadata:\n  name: x\n",
		"unsupported kind":  "kind: Pod\nmetadata:\n  name: x\n",
		"missing metadata":  "kind: Job\n",
		"missing name":      "kind: Job\nmetadata:\n  namespace: x\n",
		"bad parallelism":   "kind: Job\nmetadata:\n  name: x\nspec:\n  parallelism: banana\n",
		"tab indentation":   "kind: Job\nmetadata:\n\tname: x\n",
		"not key-value":     "kind: Job\njust words\n",
		"negative ttl":      "kind: Job\nmetadata:\n  name: x\nspec:\n  ttlSecondsAfterFinished: -4\n",
		"bad grace seconds": "kind: Job\nmetadata:\n  name: x\nspec:\n  template:\n    spec:\n      terminationGracePeriodSeconds: soon\n",
	}
	for name, y := range cases {
		if _, err := Parse(strings.NewReader(y)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseCommentsAndQuotes(t *testing.T) {
	y := `
# a claim with comments
kind: VniClaim
metadata:
  name: "quoted-name"   # trailing comment
  namespace: 'single'
spec:
  name: test
`
	objs, err := Parse(strings.NewReader(y))
	if err != nil {
		t.Fatal(err)
	}
	m := objs[0].GetMeta()
	if m.Name != "quoted-name" || m.Namespace != "single" {
		t.Errorf("meta = %+v", m)
	}
}

func TestParseEmptyInput(t *testing.T) {
	objs, err := Parse(strings.NewReader("\n# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 0 {
		t.Errorf("objects = %d", len(objs))
	}
}

func TestSyntaxErrorsWrapped(t *testing.T) {
	_, err := Parse(strings.NewReader("kind Job\n"))
	if !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v, want ErrSyntax", err)
	}
}
