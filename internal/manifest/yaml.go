// Package manifest parses the user-facing YAML interface of the paper's
// integration — Kubernetes Jobs with the vni annotation (Listing 1 and 3)
// and VniClaim resources (Listing 2) — into the typed objects of
// internal/k8s, so manifests can be submitted with `shscluster -f`.
//
// The parser implements the YAML subset those manifests use (stdlib only):
// block mappings with consistent indentation, scalar values (strings,
// numbers, booleans, quoted strings), `---` document separators, and `#`
// comments. It is not a general YAML parser and rejects what it does not
// understand rather than guessing.
package manifest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrSyntax wraps parse failures.
var ErrSyntax = errors.New("manifest: syntax error")

// node is a parsed YAML value: string scalar or nested mapping.
type node struct {
	scalar string
	isMap  bool
	keys   []string // insertion order
	child  map[string]*node
}

func newMap() *node { return &node{isMap: true, child: make(map[string]*node)} }

func (n *node) set(key string, v *node) {
	if _, exists := n.child[key]; !exists {
		n.keys = append(n.keys, key)
	}
	n.child[key] = v
}

// get walks a dotted path; returns nil if absent.
func (n *node) get(path ...string) *node {
	cur := n
	for _, p := range path {
		if cur == nil || !cur.isMap {
			return nil
		}
		cur = cur.child[p]
	}
	return cur
}

// str returns the scalar at path, or "".
func (n *node) str(path ...string) string {
	v := n.get(path...)
	if v == nil || v.isMap {
		return ""
	}
	return v.scalar
}

type line struct {
	indent int
	key    string
	value  string
	lineNo int
}

// parseDocs splits the stream into documents and parses each into a tree.
func parseDocs(r io.Reader) ([]*node, error) {
	sc := bufio.NewScanner(r)
	var docs []*node
	var lines []line
	lineNo := 0
	flush := func() error {
		if len(lines) == 0 {
			return nil
		}
		root, rest, err := buildMap(lines, lines[0].indent)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("%w: line %d: unexpected dedent", ErrSyntax, rest[0].lineNo)
		}
		docs = append(docs, root)
		lines = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if trimmed == "---" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if strings.ContainsRune(raw[:indent], '\t') {
			return nil, fmt.Errorf("%w: line %d: tabs are not allowed in indentation", ErrSyntax, lineNo)
		}
		key, value, ok := splitKV(trimmed)
		if !ok {
			return nil, fmt.Errorf("%w: line %d: expected \"key: value\" or \"key:\", got %q", ErrSyntax, lineNo, trimmed)
		}
		lines = append(lines, line{indent: indent, key: key, value: value, lineNo: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return docs, nil
}

// splitKV separates "key: value" honoring a trailing-colon block key.
func splitKV(s string) (key, value string, ok bool) {
	i := strings.Index(s, ":")
	if i <= 0 {
		return "", "", false
	}
	key = strings.TrimSpace(s[:i])
	value = strings.TrimSpace(s[i+1:])
	// Strip trailing comments; a quoted value ends at its closing quote.
	if len(value) > 0 && (value[0] == '"' || value[0] == '\'') {
		if j := strings.IndexByte(value[1:], value[0]); j >= 0 {
			value = value[:j+2]
		}
	} else if j := strings.Index(value, " #"); j >= 0 {
		value = strings.TrimSpace(value[:j])
	}
	return key, unquote(value), true
}

func unquote(v string) string {
	if len(v) >= 2 {
		if (v[0] == '"' && v[len(v)-1] == '"') || (v[0] == '\'' && v[len(v)-1] == '\'') {
			return v[1 : len(v)-1]
		}
	}
	return v
}

// buildMap consumes lines at exactly `indent`, recursing for deeper blocks.
func buildMap(lines []line, indent int) (*node, []line, error) {
	m := newMap()
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			return m, lines, nil
		}
		if l.indent > indent {
			return nil, nil, fmt.Errorf("%w: line %d: unexpected indent", ErrSyntax, l.lineNo)
		}
		lines = lines[1:]
		if l.value != "" {
			m.set(l.key, &node{scalar: l.value})
			continue
		}
		// Block value: everything more indented belongs to it.
		if len(lines) > 0 && lines[0].indent > indent {
			child, rest, err := buildMap(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			m.set(l.key, child)
			lines = rest
			continue
		}
		// "key:" with nothing nested — empty scalar.
		m.set(l.key, &node{scalar: ""})
	}
	return m, lines, nil
}
