package libfabric

import (
	"errors"
	"testing"

	"github.com/caps-sim/shs-k8s/internal/cxi"
	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/libcxi"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

type env struct {
	eng        *sim.Engine
	kern       *nsmodel.Kernel
	sw         *fabric.Switch
	devA, devB *cxi.Device
	root       *nsmodel.Process
}

func newEnv(t *testing.T) *env {
	t.Helper()
	eng := sim.NewEngine(1)
	kern := nsmodel.NewKernel()
	cfg := fabric.DefaultConfig()
	cfg.JitterFrac = 0
	sw := fabric.NewSwitch("s", eng, cfg)
	devA := cxi.NewDevice("cxi0", eng, kern, sw, cxi.DefaultDeviceConfig())
	devB := cxi.NewDevice("cxi1", eng, kern, sw, cxi.DefaultDeviceConfig())
	root, err := kern.Spawn("root", 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &env{eng: eng, kern: kern, sw: sw, devA: devA, devB: devB, root: root}
}

func TestGetInfoEnumeratesDevices(t *testing.T) {
	e := newEnv(t)
	p, _ := e.kern.Spawn("app", 0, 0, 0, 0)
	infos := GetInfo([]*cxi.Device{e.devA, e.devB}, p.PID, 1, fabric.TCDedicated)
	if len(infos) != 2 {
		t.Fatalf("got %d infos", len(infos))
	}
	for _, in := range infos {
		if in.Provider != ProviderName {
			t.Errorf("provider = %q", in.Provider)
		}
	}
}

func TestOpenDomainDefaultVNI(t *testing.T) {
	e := newEnv(t)
	p, _ := e.kern.Spawn("app", 0, 0, 0, 0)
	d, err := OpenDomain(e.eng, Info{Device: e.devA, Caller: p.PID, VNI: 1, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Addr().NIC != e.devA.Addr() {
		t.Error("domain addr NIC mismatch")
	}
	if d.Info().VNI != 1 {
		t.Error("info not preserved")
	}
}

func TestOpenDomainDeniedWithoutService(t *testing.T) {
	e := newEnv(t)
	ns := e.kern.NewNetNS("pod")
	p, _ := e.kern.Spawn("app", 1000, 1000, ns.Inode, 0)
	_, err := OpenDomain(e.eng, Info{Device: e.devA, Caller: p.PID, VNI: 777, TC: fabric.TCDedicated})
	if !errors.Is(err, libcxi.ErrNoMatchingService) {
		t.Errorf("err = %v, want ErrNoMatchingService", err)
	}
}

func TestSendRecvBetweenContainerDomains(t *testing.T) {
	e := newEnv(t)
	vni := fabric.VNI(88)
	nsA := e.kern.NewNetNS("podA")
	nsB := e.kern.NewNetNS("podB")
	for _, cfg := range []struct {
		dev *cxi.Device
		ns  nsmodel.Inode
	}{{e.devA, nsA.Inode}, {e.devB, nsB.Inode}} {
		h := libcxi.Open(cfg.dev, e.root.PID)
		if _, err := h.SvcAlloc(cxi.SvcDesc{
			Name: "pod", Restricted: true,
			Members: []cxi.Member{cxi.NetNSMember(cfg.ns)},
			VNIs:    []fabric.VNI{vni},
		}); err != nil {
			t.Fatal(err)
		}
	}
	pa, _ := e.kern.Spawn("a", 0, 0, nsA.Inode, 0)
	pb, _ := e.kern.Spawn("b", 0, 0, nsB.Inode, 0)
	da, err := OpenDomain(e.eng, Info{Device: e.devA, Caller: pa.PID, VNI: vni, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDomain(e.eng, Info{Device: e.devB, Caller: pb.PID, VNI: vni, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	gotSize := -1
	var gotSrc Addr
	db.OnRecv(func(src Addr, size int) { gotSrc, gotSize = src, size })
	completed := false
	e.eng.After(0, func() {
		if err := da.Send(db.Addr(), 4096, func() { completed = true }); err != nil {
			t.Error(err)
		}
	})
	e.eng.Run()
	if gotSize != 4096 {
		t.Fatalf("recv size = %d, want 4096", gotSize)
	}
	if gotSrc.NIC != e.devA.Addr() {
		t.Errorf("recv src = %v", gotSrc)
	}
	if !completed {
		t.Error("tx completion missing")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	e := newEnv(t)
	p, _ := e.kern.Spawn("app", 0, 0, 0, 0)
	d, err := OpenDomain(e.eng, Info{Device: e.devA, Caller: p.PID, VNI: 1, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if err := d.Send(Addr{}, 1, nil); !errors.Is(err, ErrDomainClosed) {
		t.Errorf("err = %v, want ErrDomainClosed", err)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{NIC: 3, EP: 9}
	if a.String() != "cxi://3/9" {
		t.Errorf("String = %q", a.String())
	}
}

func TestRMAThroughDomains(t *testing.T) {
	e := newEnv(t)
	pa, _ := e.kern.Spawn("a", 0, 0, 0, 0)
	pb, _ := e.kern.Spawn("b", 0, 0, 0, 0)
	da, err := OpenDomain(e.eng, Info{Device: e.devA, Caller: pa.PID, VNI: 1, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDomain(e.eng, Info{Device: e.devB, Caller: pb.PID, VNI: 1, TC: fabric.TCDedicated})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := db.RegisterMR(1<<20, AccessRemoteRead|AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	wrote, read := false, false
	e.eng.After(0, func() {
		if err := da.Write(db.Addr(), mr.Key(), 0, 4096, func() { wrote = true }); err != nil {
			t.Error(err)
		}
		if err := da.Read(db.Addr(), mr.Key(), 4096, 8192, func() { read = true }); err != nil {
			t.Error(err)
		}
	})
	e.eng.Run()
	if !wrote || !read {
		t.Errorf("wrote=%v read=%v", wrote, read)
	}
	db.DeregisterMR(mr)
	// RMA against the deregistered key must not complete.
	late := false
	e.eng.After(0, func() {
		_ = da.Write(db.Addr(), mr.Key(), 0, 64, func() { late = true })
	})
	e.eng.Run()
	if late {
		t.Error("write to deregistered MR completed")
	}
	da.Close()
	if _, err := da.RegisterMR(64, AccessRemoteRead); err == nil {
		t.Error("RegisterMR on closed domain succeeded")
	}
	if err := da.Write(db.Addr(), mr.Key(), 0, 1, nil); err == nil {
		t.Error("Write on closed domain succeeded")
	}
	if err := da.Read(db.Addr(), mr.Key(), 0, 1, nil); err == nil {
		t.Error("Read on closed domain succeeded")
	}
}
