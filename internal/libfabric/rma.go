package libfabric

import (
	"github.com/caps-sim/shs-k8s/internal/cxi"
)

// MR is a registered memory region exposed for remote access, the
// fi_mr_reg equivalent.
type MR struct {
	mr *cxi.MemoryRegion
}

// Key returns the remote key to share with peers.
func (m *MR) Key() uint64 { return uint64(m.mr.Key) }

// Access bits re-exported for callers.
const (
	AccessRemoteRead  = cxi.MRRemoteRead
	AccessRemoteWrite = cxi.MRRemoteWrite
)

// RegisterMR registers size bytes for remote access (fi_mr_reg).
func (d *Domain) RegisterMR(size int, access cxi.MRAccess) (*MR, error) {
	if d.closed {
		return nil, ErrDomainClosed
	}
	mr, err := d.ep.RegisterMR(size, access)
	if err != nil {
		return nil, err
	}
	return &MR{mr: mr}, nil
}

// DeregisterMR revokes the region (fi_close on the MR).
func (d *Domain) DeregisterMR(m *MR) {
	if d.closed {
		return
	}
	d.ep.DeregisterMR(m.mr)
}

// Write performs an RDMA write of size bytes into the remote region
// (fi_write); onComplete fires at remote completion acknowledgement.
func (d *Domain) Write(dst Addr, key uint64, offset, size int, onComplete func()) error {
	if d.closed {
		return ErrDomainClosed
	}
	return d.ep.Write(dst.NIC, dst.EP, cxi.MRKey(key), offset, size, onComplete)
}

// Read performs an RDMA read of size bytes from the remote region
// (fi_read); onData fires when the data has arrived locally.
func (d *Domain) Read(dst Addr, key uint64, offset, size int, onData func()) error {
	if d.closed {
		return ErrDomainClosed
	}
	return d.ep.Read(dst.NIC, dst.EP, cxi.MRKey(key), offset, size, onData)
}
