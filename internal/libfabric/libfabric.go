// Package libfabric models the OpenFabrics Interfaces (OFI) abstraction the
// Slingshot stack exposes to applications — "the de-facto interface for
// Slingshot" (paper §III-A). The shapes follow libfabric's object model:
// an Info describes a provider; a Domain binds a process to a NIC; an
// Endpoint sends and receives messages; completions surface on completion
// queues (here: callbacks, since the simulation is event-driven).
//
// The reproduction's patch (mirroring the paper's libfabric patch) is that
// domain opening authenticates via the CXI service scan in libcxi, which
// understands netns members, so containerized ranks acquire endpoints
// without any UID/GID games.
package libfabric

import (
	"errors"
	"fmt"

	"github.com/caps-sim/shs-k8s/internal/cxi"
	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/libcxi"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

// ProviderName identifies the simulated provider, matching the real
// provider string for Slingshot.
const ProviderName = "cxi"

// Errors.
var (
	ErrDomainClosed = errors.New("libfabric: domain closed")
	ErrNoEndpoint   = errors.New("libfabric: endpoint not enabled")
)

// Addr names a remote endpoint: NIC fabric address plus endpoint index.
// It plays the role of a fi_addr_t resolved through an address vector.
type Addr struct {
	NIC fabric.Addr
	EP  int
}

// String formats the address for diagnostics.
func (a Addr) String() string { return fmt.Sprintf("cxi://%d/%d", a.NIC, a.EP) }

// Info describes an openable domain, i.e. the result of fi_getinfo for one
// NIC as seen by one process.
type Info struct {
	Provider string
	Device   *cxi.Device
	Caller   nsmodel.PID
	VNI      fabric.VNI
	TC       fabric.TrafficClass
}

// GetInfo enumerates domains available to caller over the given devices for
// the requested VNI. It performs no authentication — that happens at
// OpenDomain, exactly as fi_getinfo is cheap and fi_domain is not.
func GetInfo(devs []*cxi.Device, caller nsmodel.PID, vni fabric.VNI, tc fabric.TrafficClass) []Info {
	out := make([]Info, 0, len(devs))
	for _, d := range devs {
		out = append(out, Info{Provider: ProviderName, Device: d, Caller: caller, VNI: vni, TC: tc})
	}
	return out
}

// Domain is an opened access domain: a process bound to one NIC on one VNI
// through an authenticated CXI endpoint.
type Domain struct {
	eng    *sim.Engine
	handle *libcxi.Handle
	ep     *cxi.Endpoint
	closed bool
	info   Info
}

// OpenDomain opens the domain described by info. This is the authenticated
// step: the library scans CXI services for one that admits the caller on
// info.VNI (UID, GID or netns member), then allocates the RDMA endpoint.
func OpenDomain(eng *sim.Engine, info Info) (*Domain, error) {
	h := libcxi.Open(info.Device, info.Caller)
	ep, err := h.EPAllocAuto(info.VNI, info.TC)
	if err != nil {
		return nil, fmt.Errorf("libfabric: open domain on %s: %w", info.Device.Name, err)
	}
	return &Domain{eng: eng, handle: h, ep: ep, info: info}, nil
}

// Addr returns the domain endpoint's fabric-visible address.
func (d *Domain) Addr() Addr { return Addr{NIC: d.ep.NICAddr(), EP: d.ep.Idx()} }

// Info returns the opening parameters.
func (d *Domain) Info() Info { return d.info }

// SetFidelity selects the fabric fidelity (packet, flow or hybrid) for
// this domain's subsequent sends; see fabric.Fidelity.
func (d *Domain) SetFidelity(f fabric.Fidelity) { d.ep.SetFidelity(f) }

// OnRecv registers the receive callback; src names the sending endpoint
// (NIC address plus the initiator endpoint index the frame header carries,
// as Cassini frames carry the initiator PID index), size the payload.
func (d *Domain) OnRecv(fn func(src Addr, size int)) {
	d.ep.OnMessage(func(m cxi.Message) {
		fn(Addr{NIC: m.Src, EP: m.SrcEP}, m.Size)
	})
}

// Send transmits size bytes to dst. onComplete (optional) fires at local
// completion, corresponding to a CQ entry on the transmit queue.
func (d *Domain) Send(dst Addr, size int, onComplete func()) error {
	if d.closed {
		return ErrDomainClosed
	}
	return d.ep.Send(dst.NIC, dst.EP, size, onComplete)
}

// Close releases the endpoint.
func (d *Domain) Close() {
	if d.closed {
		return
	}
	d.closed = true
	d.ep.Close()
}
