package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestArenaCancelThenReuseAliasing is the aliasing hazard the generation
// counter exists for: cancel an event, let its arena slot be recycled by a
// new event, then cancel through the stale handle again. The second cancel
// must be a no-op against the slot's new occupant.
func TestArenaCancelThenReuseAliasing(t *testing.T) {
	e := NewEngine(1)
	aRan, bRan := false, false
	a := e.After(time.Second, func() { aRan = true })
	a.Cancel()
	// The freed slot is top of the free list, so b recycles a's storage.
	b := e.After(time.Second, func() { bRan = true })
	if a.idx != b.idx {
		t.Fatalf("slot not recycled: a.idx=%d b.idx=%d", a.idx, b.idx)
	}
	a.Cancel() // stale: must not touch b
	a.Cancel() // and idempotent
	e.Run()
	if aRan {
		t.Error("cancelled event ran")
	}
	if !bRan {
		t.Error("slot reuse let a stale Cancel kill the new event")
	}
}

// TestArenaStaleHandleAfterFire covers the same hazard for fired events: a
// handle kept past firing must not cancel the slot's next occupant.
func TestArenaStaleHandleAfterFire(t *testing.T) {
	e := NewEngine(1)
	a := e.After(time.Second, func() {})
	e.Run()
	ran := false
	b := e.After(time.Second, func() { ran = true })
	if a.idx != b.idx {
		t.Fatalf("slot not recycled: a.idx=%d b.idx=%d", a.idx, b.idx)
	}
	a.Cancel()
	if a.At() != 0 {
		t.Errorf("stale handle At() = %v, want 0", a.At())
	}
	if b.At() != Time(2*time.Second) {
		t.Errorf("live handle At() = %v, want 2s", b.At())
	}
	e.Run()
	if !ran {
		t.Error("stale handle cancelled the reused slot's event")
	}
}

// TestZeroEventIsInert: the zero handle must be safe to Cancel.
func TestZeroEventIsInert(t *testing.T) {
	var ev Event
	ev.Cancel()
	if ev.At() != 0 {
		t.Errorf("zero event At() = %v", ev.At())
	}
}

// TestCancelRemovesFromHeapImmediately asserts eager removal: no tombstones
// remain queued after Cancel, and Pending reflects that in O(1).
func TestCancelRemovesFromHeapImmediately(t *testing.T) {
	e := NewEngine(1)
	var evs []Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.After(Duration(i)*time.Millisecond, func() {}))
	}
	for i := 0; i < 100; i += 2 {
		evs[i].Cancel()
	}
	if got := len(e.heap); got != 50 {
		t.Errorf("heap holds %d entries after cancelling half, want 50 (eager removal)", got)
	}
	if got := e.Pending(); got != 50 {
		t.Errorf("Pending() = %d, want 50", got)
	}
	if got := len(e.free); got != 50 {
		t.Errorf("free list holds %d slots, want 50", got)
	}
	e.Run()
	if e.Steps != 50 {
		t.Errorf("Steps = %d, want 50", e.Steps)
	}
}

// TestRunUntilDoneWithCancelledHead: cancelling the earliest event must not
// confuse the deadline scan — the next live event drives the wait.
func TestRunUntilDoneWithCancelledHead(t *testing.T) {
	e := NewEngine(1)
	head := e.After(time.Second, func() { t.Error("cancelled head ran") })
	done := false
	e.After(2*time.Second, func() { done = true })
	head.Cancel()
	if !e.RunUntilDone(func() bool { return done }, Time(10*time.Second)) {
		t.Fatal("condition never held")
	}
	if e.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s (the live event's time)", e.Now())
	}
}

// TestRunUntilWithCancelledHead: same for the deadline variant, including a
// cancelled head that sits exactly on the deadline.
func TestRunUntilWithCancelledHead(t *testing.T) {
	e := NewEngine(1)
	head := e.After(time.Second, func() { t.Error("cancelled head ran") })
	ran := false
	e.After(3*time.Second, func() { ran = true })
	head.Cancel()
	e.RunUntil(Time(time.Second))
	if ran {
		t.Error("later event ran before its time")
	}
	if e.Now() != Time(time.Second) {
		t.Errorf("clock = %v, want deadline 1s", e.Now())
	}
	e.Run()
	if !ran {
		t.Error("live event lost")
	}
}

// TestArenaGrowthAndReuse: the arena grows only to the peak number of
// simultaneously queued events; steady-state scheduling recycles slots
// instead of growing.
func TestArenaGrowthAndReuse(t *testing.T) {
	e := NewEngine(1)
	const peak = 1000
	for i := 0; i < peak; i++ {
		e.After(Duration(i)*time.Microsecond, func() {})
	}
	if len(e.arena) != peak {
		t.Fatalf("arena = %d slots at peak, want %d", len(e.arena), peak)
	}
	e.Run()
	// Steady state: one event in flight at a time, many times over.
	for i := 0; i < 10*peak; i++ {
		e.After(time.Microsecond, func() {})
		e.Run()
	}
	if len(e.arena) != peak {
		t.Errorf("arena grew to %d slots in steady state, want to stay at %d (free-list reuse)", len(e.arena), peak)
	}
	if e.Steps != 11*peak {
		t.Errorf("Steps = %d, want %d", e.Steps, 11*peak)
	}
}

// TestArenaDeterminismUnderChurn runs a randomized schedule/cancel/reschedule
// workload — heavy slot reuse, nested scheduling, same-instant FIFO — twice
// and asserts the fire sequence and step counts are identical. This is the
// engine-level form of the scenario determinism contract: pooling must not
// perturb dispatch order.
func TestArenaDeterminismUnderChurn(t *testing.T) {
	run := func() ([]int, uint64) {
		e := NewEngine(7)
		r := rand.New(rand.NewSource(99)) // workload shape, not engine RNG
		var fired []int
		var evs []Event
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := id
			id++
			evs = append(evs, e.After(Duration(r.Intn(50))*time.Microsecond, func() {
				fired = append(fired, n)
				if depth < 3 && r.Intn(2) == 0 {
					schedule(depth + 1)
				}
			}))
		}
		for i := 0; i < 200; i++ {
			schedule(0)
			if r.Intn(3) == 0 && len(evs) > 0 {
				evs[r.Intn(len(evs))].Cancel()
			}
		}
		e.Run()
		return fired, e.Steps
	}
	f1, s1 := run()
	f2, s2 := run()
	if s1 != s2 {
		t.Fatalf("step counts differ: %d vs %d", s1, s2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("fire counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("fire order diverged at %d: %d vs %d", i, f1[i], f2[i])
		}
	}
}

// TestAtCallAvoidsClosureAllocation: the AtCall/AfterCall path — a shared
// top-level function plus an explicit argument — must schedule and dispatch
// without allocating.
func TestAtCallAvoidsClosureAllocation(t *testing.T) {
	e := NewEngine(1)
	hits := 0
	fn := func(arg any) { *(arg.(*int))++ }
	// Warm the arena so the measured loop is pure steady state.
	e.AfterCall(0, fn, &hits)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterCall(time.Microsecond, fn, &hits)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state AfterCall+Run allocates %.1f objects/op, want 0", allocs)
	}
	if hits == 0 {
		t.Error("callback never ran")
	}
}
