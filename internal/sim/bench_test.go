package sim_test

// Thin wrappers so the canonical event-core benchmarks (internal/perfsuite)
// run under `go test -bench` here; `shsbench -exp perf` runs the same
// bodies and writes them to BENCH_*.json.

import (
	"testing"

	"github.com/caps-sim/shs-k8s/internal/perfsuite"
)

func BenchmarkEngine_Schedule(b *testing.B)    { perfsuite.EngineSchedule(b) }
func BenchmarkEngine_CancelHeavy(b *testing.B) { perfsuite.EngineCancelHeavy(b) }
