// Package sim provides the discrete-event simulation engine used by all
// simulated substrates in this repository: a virtual clock, an event queue,
// and deterministic, seedable randomness.
//
// Every simulated subsystem (the Slingshot fabric, the Kubernetes control
// plane, the container runtime) advances time exclusively through an Engine.
// This makes experiments deterministic for a given seed while still
// exhibiting realistic jitter, and lets a multi-minute admission experiment
// run in milliseconds of wall time.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, expressed as a duration since the start
// of the simulation. Using a dedicated type prevents accidental mixing of
// virtual and wall-clock times.
type Time time.Duration

// Duration re-exports time.Duration for call-site symmetry with Time.
type Duration = time.Duration

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Seconds returns the virtual time in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Duration converts t to the duration elapsed since simulation start.
func (t Time) Duration() Duration { return Duration(t) }

// String formats the virtual time like a stopwatch reading.
func (t Time) String() string {
	d := time.Duration(t)
	return fmt.Sprintf("%02d:%02d.%03d", int(d.Minutes()), int(d.Seconds())%60, d.Milliseconds()%1000)
}

// Clock exposes the current virtual time. Components hold a Clock rather
// than the full Engine when they only need to read time.
type Clock interface {
	// Now returns the current virtual time.
	Now() Time
}
