package sim

import "fmt"

// CheckIntegrity audits the engine's internal bookkeeping and returns the
// first inconsistency found, or nil. It verifies the structural invariants
// the pooled arena and hand-rolled heap rely on:
//
//   - the live counter (what Pending reports) equals the heap size;
//   - every heap entry points at an arena slot whose recorded position
//     matches its heap index (the Cancel fast path depends on this);
//   - no queued event is scheduled before the current virtual time, so the
//     clock can only move forward;
//   - the heap order property holds at every node;
//   - every free-list slot is marked unqueued (pos == -1) and appears once;
//   - heap and free list partition the arena exactly — no slot is both
//     queued and free, none is leaked.
//
// The walk is O(arena), so it is meant for harnesses (the scenario fuzzer
// runs it after every event and at end of run), not for per-event use.
func (e *Engine) CheckIntegrity() error {
	if e.live != len(e.heap) {
		return fmt.Errorf("sim: integrity: live counter %d != queued events %d", e.live, len(e.heap))
	}
	inHeap := make(map[int32]int, len(e.heap))
	for i, idx := range e.heap {
		if idx < 0 || int(idx) >= len(e.arena) {
			return fmt.Errorf("sim: integrity: heap[%d] holds out-of-range slot %d (arena %d)", i, idx, len(e.arena))
		}
		if prev, dup := inHeap[idx]; dup {
			return fmt.Errorf("sim: integrity: slot %d queued twice (heap[%d] and heap[%d])", idx, prev, i)
		}
		inHeap[idx] = i
		ev := &e.arena[idx]
		if ev.pos != int32(i) {
			return fmt.Errorf("sim: integrity: slot %d at heap[%d] records pos %d", idx, i, ev.pos)
		}
		if ev.at < e.now {
			return fmt.Errorf("sim: integrity: queued event at %v is before now %v (clock would run backwards)", ev.at, e.now)
		}
		if i > 0 {
			parent := e.heap[(i-1)/2]
			if e.heapLess(idx, parent) {
				return fmt.Errorf("sim: integrity: heap order violated at index %d (slot %d sorts before its parent %d)", i, idx, parent)
			}
		}
	}
	inFree := make(map[int32]bool, len(e.free))
	for _, idx := range e.free {
		if idx < 0 || int(idx) >= len(e.arena) {
			return fmt.Errorf("sim: integrity: free list holds out-of-range slot %d (arena %d)", idx, len(e.arena))
		}
		if inFree[idx] {
			return fmt.Errorf("sim: integrity: slot %d freed twice", idx)
		}
		inFree[idx] = true
		if _, queued := inHeap[idx]; queued {
			return fmt.Errorf("sim: integrity: slot %d is both queued and free", idx)
		}
		if e.arena[idx].pos != -1 {
			return fmt.Errorf("sim: integrity: free slot %d still records heap pos %d", idx, e.arena[idx].pos)
		}
	}
	if len(e.heap)+len(e.free) != len(e.arena) {
		return fmt.Errorf("sim: integrity: %d slot(s) leaked (arena %d, queued %d, free %d)",
			len(e.arena)-len(e.heap)-len(e.free), len(e.arena), len(e.heap), len(e.free))
	}
	return nil
}
