package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(Time(30*time.Millisecond), func() { got = append(got, 3) })
	e.At(Time(10*time.Millisecond), func() { got = append(got, 1) })
	e.At(Time(20*time.Millisecond), func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event order %v, want %v", got, want)
			break
		}
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(5*time.Millisecond), func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.After(time.Second, func() {
		fired = e.Now()
		e.After(time.Second, func() { fired = e.Now() })
	})
	e.Run()
	if fired != Time(2*time.Second) {
		t.Errorf("nested After fired at %v, want 2s", fired)
	}
}

func TestEngineNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(-time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Error("negative After never ran")
	}
	if e.Now() != 0 {
		t.Errorf("clock moved to %v for clamped event", e.Now())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.After(time.Second, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after run", e.Pending())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var ran []Duration
	for _, d := range []Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.After(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(Time(2 * time.Second))
	if len(ran) != 2 {
		t.Fatalf("ran %d events before deadline, want 2", len(ran))
	}
	if e.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want exactly deadline", e.Now())
	}
	e.Run()
	if len(ran) != 3 {
		t.Errorf("remaining event lost: ran %d total", len(ran))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(Time(5 * time.Second))
	if e.Now() != Time(5*time.Second) {
		t.Errorf("clock = %v, want 5s", e.Now())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(time.Second)
	e.RunFor(time.Second)
	if e.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s", e.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Duration {
		e := NewEngine(seed)
		var out []Duration
		for i := 0; i < 100; i++ {
			out = append(out, e.Jitter(time.Millisecond, 0.5))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter streams")
	}
}

func TestJitterBounds(t *testing.T) {
	e := NewEngine(7)
	base := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := e.Jitter(base, 0.1)
		if j < 90*time.Millisecond || j > 110*time.Millisecond {
			t.Fatalf("jitter %v outside ±10%% of %v", j, base)
		}
	}
}

func TestJitterZeroFracIsIdentity(t *testing.T) {
	e := NewEngine(7)
	if got := e.Jitter(time.Second, 0); got != time.Second {
		t.Errorf("Jitter(1s, 0) = %v", got)
	}
}

func TestNormalClampsAtZero(t *testing.T) {
	e := NewEngine(7)
	for i := 0; i < 1000; i++ {
		if d := e.Normal(time.Microsecond, time.Second); d < 0 {
			t.Fatalf("Normal returned negative %v", d)
		}
	}
}

func TestTimeString(t *testing.T) {
	got := Time(65*time.Second + 250*time.Millisecond).String()
	if got != "01:05.250" {
		t.Errorf("String() = %q, want 01:05.250", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(3 * time.Second)
	b := Time(time.Second)
	if a.Sub(b) != 2*time.Second {
		t.Errorf("Sub = %v", a.Sub(b))
	}
	if b.Add(time.Second) != Time(2*time.Second) {
		t.Errorf("Add = %v", b.Add(time.Second))
	}
	if a.Seconds() != 3 {
		t.Errorf("Seconds = %v", a.Seconds())
	}
}

// Property: for any set of schedule offsets, events execute in sorted order
// and the engine's step count equals the number of events.
func TestQuickEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine(1)
		var fired []Time
		for _, off := range offsets {
			e.After(Duration(off)*time.Microsecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return e.Steps == uint64(len(offsets))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset of events runs exactly the others.
func TestQuickCancellationSubset(t *testing.T) {
	f := func(offsets []uint8, mask []bool) bool {
		e := NewEngine(1)
		ran := 0
		wantRan := 0
		for i, off := range offsets {
			ev := e.After(Duration(off)*time.Millisecond, func() { ran++ })
			if i < len(mask) && mask[i] {
				ev.Cancel()
			} else {
				wantRan++
			}
		}
		e.Run()
		return ran == wantRan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

func TestRunUntilDoneStopsWhenConditionHolds(t *testing.T) {
	e := NewEngine(1)
	hits := 0
	for i := 1; i <= 5; i++ {
		e.After(Duration(i)*time.Second, func() { hits++ })
	}
	ok := e.RunUntilDone(func() bool { return hits >= 3 }, Time(10*time.Second))
	if !ok {
		t.Fatal("condition never reported true")
	}
	if hits != 3 {
		t.Errorf("hits = %d, want 3 (no extra events executed)", hits)
	}
	if e.Now() != Time(3*time.Second) {
		t.Errorf("clock = %v, want 3s (time of the satisfying event)", e.Now())
	}
}

func TestRunUntilDoneTimeoutConsumesDeadline(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {})
	ok := e.RunUntilDone(func() bool { return false }, Time(4*time.Second))
	if ok {
		t.Fatal("condition cannot be true")
	}
	if e.Now() != Time(4*time.Second) {
		t.Errorf("clock = %v, want exactly the deadline", e.Now())
	}
}

func TestRunUntilDoneImmediateConditionRunsNothing(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(time.Second, func() { ran = true })
	if !e.RunUntilDone(func() bool { return true }, Time(10*time.Second)) {
		t.Fatal("want immediate true")
	}
	if ran || e.Now() != 0 {
		t.Errorf("engine advanced (ran=%v now=%v) despite satisfied condition", ran, e.Now())
	}
}
