package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback in virtual time.
type Event struct {
	at     Time
	seq    uint64 // tiebreaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index; -1 when not queued
	cancel bool
}

// Cancel marks the event so its callback will not run. Safe to call at most
// once, before or after the event fires (firing a cancelled event is a
// no-op; cancelling a fired event is a no-op).
func (e *Event) Cancel() { e.cancel = true }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; simulated concurrency is expressed by scheduling events,
// not by goroutines, which keeps runs deterministic.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand
	// Steps counts executed events, useful as a runaway guard in tests.
	Steps uint64
}

// NewEngine returns an engine whose randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now implements Clock.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic randomness source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in a simulated component.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero so jittered delays cannot travel backwards.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.Steps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// exactly deadline (even if no event was scheduled there). Events scheduled
// later remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for e.queue.Len() > 0 {
		next := e.peek()
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// RunUntilDone executes events until cond reports true or virtual time
// would pass deadline, and returns cond's final value. When cond never
// becomes true the clock is left at deadline, so a failed wait consumes
// exactly its timeout — the primitive behind the scenario engine's
// wait_-style actions.
func (e *Engine) RunUntilDone(cond func() bool, deadline Time) bool {
	for !cond() {
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	if cond() {
		return true
	}
	if e.now < deadline {
		e.now = deadline
	}
	return cond()
}

// Pending returns the number of queued (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancel {
			n++
		}
	}
	return n
}

func (e *Engine) peek() *Event {
	// Skip cancelled heads lazily.
	for e.queue.Len() > 0 {
		head := e.queue[0]
		if head.cancel {
			heap.Pop(&e.queue)
			continue
		}
		return head
	}
	return nil
}

// Jitter returns a duration drawn uniformly from [d*(1-frac), d*(1+frac)].
// It is the standard way simulated components add run-to-run variability.
func (e *Engine) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	lo := float64(d) * (1 - frac)
	hi := float64(d) * (1 + frac)
	return Duration(lo + e.rng.Float64()*(hi-lo))
}

// Normal returns a normally distributed duration with the given mean and
// standard deviation, clamped at zero.
func (e *Engine) Normal(mean, stddev Duration) Duration {
	v := float64(mean) + e.rng.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return Duration(v)
}
