package sim

import (
	"fmt"
	"math/rand"
)

// Event is a cancellable handle to a scheduled callback. It is a small
// value (engine pointer, arena slot, generation): the event's storage lives
// in the engine's pooled arena and is reused after the event fires or is
// cancelled, so per-event scheduling performs no heap allocation. The
// generation check makes a stale handle — one whose slot has since been
// recycled for a different event — a guaranteed no-op, so holding handles
// past firing is always safe.
//
// The zero Event is valid and inert: Cancel and At on it do nothing.
type Event struct {
	eng *Engine
	idx int32
	gen uint32
}

// Cancel removes the event from the queue so its callback will not run. It
// is idempotent and safe at any time: cancelling a fired, already-cancelled
// or recycled event is a no-op. Removal is eager (the slot is freed and the
// heap shrinks immediately), so heavy cancellation leaves no tombstones for
// the dispatch loop to skim.
func (h Event) Cancel() {
	e := h.eng
	if e == nil {
		return
	}
	ev := &e.arena[h.idx]
	if ev.gen != h.gen || ev.pos < 0 {
		return // fired, cancelled, or slot recycled since
	}
	e.heapRemove(int(ev.pos))
	e.live--
	e.release(h.idx)
}

// At returns the virtual time the event is scheduled for, or zero once the
// event has fired or been cancelled (the handle is then stale).
func (h Event) At() Time {
	e := h.eng
	if e == nil {
		return 0
	}
	ev := &e.arena[h.idx]
	if ev.gen != h.gen || ev.pos < 0 {
		return 0
	}
	return ev.at
}

// event is one arena slot. Slots are addressed by index so the backing
// array can grow without invalidating handles, and carry a generation
// bumped on every release so stale handles cannot alias a reused slot.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among events at the same instant
	// Exactly one of fn/afn is set. afn+arg is the closure-free form used
	// by hot paths (see AtCall): a shared top-level function plus a pooled
	// argument, so scheduling captures nothing.
	fn  func()
	afn func(any)
	arg any
	pos int32 // position in the heap; -1 when not queued
	gen uint32
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; simulated concurrency is expressed by scheduling events,
// not by goroutines, which keeps runs deterministic.
//
// Event storage is a pooled arena: fired and cancelled events return their
// slot to a free list, so a steady-state simulation schedules events with
// zero heap allocations regardless of length. The priority queue is a
// hand-rolled binary heap of arena indexes — no interface boxing on
// push/pop — ordered by (time, sequence), so events at the same instant
// run in FIFO order exactly as they always have.
type Engine struct {
	now   Time
	arena []event
	free  []int32 // recycled arena slots, LIFO
	heap  []int32 // binary heap of queued slots, ordered by (at, seq)
	seq   uint64
	live  int // queued events; Pending() reads this in O(1)
	rng   *rand.Rand
	// Steps counts executed events, useful as a runaway guard in tests.
	Steps uint64
	// Elided counts events skipped by analytic fast paths (the fabric's
	// flow-level transfer mode): events that would have been scheduled and
	// retired under full packet fidelity, but whose effects were applied in
	// closed form instead. Steps+Elided is therefore the packet-fidelity-
	// equivalent event count, the basis of perfsuite's events/s metric, so
	// throughput numbers stay comparable across fidelity modes.
	Elided uint64
}

// NewEngine returns an engine whose randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now implements Clock.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic randomness source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc returns a free arena slot, growing the arena when the free list is
// empty. Growth moves the backing array, which is why all bookkeeping works
// through indexes, never retained pointers.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.arena = append(e.arena, event{gen: 1})
	return int32(len(e.arena) - 1)
}

// release returns a slot to the free list, clearing callback references so
// captured memory is not retained and bumping the generation so any handle
// still pointing here goes stale.
func (e *Engine) release(idx int32) {
	ev := &e.arena[idx]
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.pos = -1
	ev.gen++
	e.free = append(e.free, idx)
}

func (e *Engine) schedule(t Time, fn func(), afn func(any), arg any) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.alloc()
	ev := &e.arena[idx]
	ev.at, ev.seq = t, e.seq
	ev.fn, ev.afn, ev.arg = fn, afn, arg
	e.seq++
	e.heapPush(idx)
	e.live++
	return Event{eng: e, idx: idx, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in a simulated component.
func (e *Engine) At(t Time, fn func()) Event {
	return e.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero so jittered delays cannot travel backwards.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now.Add(d), fn, nil, nil)
}

// AtCall schedules fn(arg) at absolute virtual time t. Unlike At, the
// callback and its argument are stored separately, so hot paths can pass a
// shared top-level function plus a pooled argument struct and schedule
// without allocating a closure. This is the packet-delivery primitive: the
// fabric, NIC and MPI layers route all per-packet/per-message events
// through it.
func (e *Engine) AtCall(t Time, fn func(arg any), arg any) Event {
	return e.schedule(t, nil, fn, arg)
}

// AfterCall is AtCall relative to the current time, with the same negative
// clamping as After.
func (e *Engine) AfterCall(d Duration, fn func(arg any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now.Add(d), nil, fn, arg)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heapPop()
	ev := &e.arena[idx]
	// Copy out before releasing: the callback may schedule (growing the
	// arena and invalidating ev) or immediately reuse this very slot.
	at, fn, afn, arg := ev.at, ev.fn, ev.afn, ev.arg
	e.live--
	e.release(idx)
	e.now = at
	e.Steps++
	if fn != nil {
		fn()
	} else if afn != nil {
		afn(arg)
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// exactly deadline (even if no event was scheduled there). Events scheduled
// later remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.arena[e.heap[0]].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// RunUntilDone executes events until cond reports true or virtual time
// would pass deadline, and returns cond's final value. When cond never
// becomes true the clock is left at deadline, so a failed wait consumes
// exactly its timeout — the primitive behind the scenario engine's
// wait_-style actions.
func (e *Engine) RunUntilDone(cond func() bool, deadline Time) bool {
	for !cond() {
		if len(e.heap) == 0 || e.arena[e.heap[0]].at > deadline {
			break
		}
		e.Step()
	}
	if cond() {
		return true
	}
	if e.now < deadline {
		e.now = deadline
	}
	return cond()
}

// Pending returns the number of queued events. Cancelled events leave the
// queue immediately, so this is a live count, maintained in O(1).
func (e *Engine) Pending() int { return e.live }

// --- binary heap of arena indexes ---
//
// A hand-rolled heap instead of container/heap: Push/Pop on the interface
// version box every element into an `any`, which is exactly the per-event
// allocation this engine exists to avoid. Ordering is (at, seq), identical
// to the original implementation, so dispatch order is bit-for-bit
// unchanged.

func (e *Engine) heapLess(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (e *Engine) heapSwap(i, j int) {
	h := e.heap
	h[i], h[j] = h[j], h[i]
	e.arena[h[i]].pos = int32(i)
	e.arena[h[j]].pos = int32(j)
}

func (e *Engine) heapPush(idx int32) {
	e.arena[idx].pos = int32(len(e.heap))
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) heapPop() int32 {
	idx := e.heap[0]
	last := len(e.heap) - 1
	e.heapSwap(0, last)
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return idx
}

// heapRemove deletes the element at heap position i (used by Cancel).
func (e *Engine) heapRemove(i int) {
	last := len(e.heap) - 1
	if i != last {
		e.heapSwap(i, last)
	}
	e.heap = e.heap[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.heapLess(e.heap[r], e.heap[l]) {
			m = r
		}
		if !e.heapLess(e.heap[m], e.heap[i]) {
			break
		}
		e.heapSwap(i, m)
		i = m
	}
}

// Jitter returns a duration drawn uniformly from [d*(1-frac), d*(1+frac)].
// It is the standard way simulated components add run-to-run variability.
func (e *Engine) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	lo := float64(d) * (1 - frac)
	hi := float64(d) * (1 + frac)
	return Duration(lo + e.rng.Float64()*(hi-lo))
}

// Normal returns a normally distributed duration with the given mean and
// standard deviation, clamped at zero.
func (e *Engine) Normal(mean, stddev Duration) Duration {
	v := float64(mean) + e.rng.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return Duration(v)
}
