package cxi

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

// DeviceConfig tunes the NIC model.
type DeviceConfig struct {
	// SendOverhead is per-message software+DMA-issue cost on the send side
	// (descriptor write, doorbell, DMA fetch).
	SendOverhead time.Duration
	// RecvOverhead is per-message delivery cost on the receive side (event
	// generation, completion write).
	RecvOverhead time.Duration
	// MsgIssueGap is the minimum spacing between successive message issues
	// from one endpoint; it bounds small-message rate.
	MsgIssueGap time.Duration
	// CoalesceFrames sends multi-frame messages as a single burst event
	// when true (default); turning it off models frame-granular simulation
	// and is used by the ablation benchmarks.
	CoalesceFrames bool
	// UsernsAware makes the driver translate caller credentials through
	// user namespaces before matching UID/GID members. The unpatched
	// driver is not userns-aware; the paper's patched stack is.
	UsernsAware bool
	// RunSigma is the per-instantiation systemic drift on the software
	// overheads, complementing fabric.Config.RunSigma (see there).
	RunSigma float64
}

// DefaultDeviceConfig returns parameters calibrated so that OSU-style
// microbenchmarks over the simulated fabric land in the regime the paper
// reports (~2 µs small-message latency, ~24 GB/s peak bandwidth per port).
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		SendOverhead:   650 * time.Nanosecond,
		RecvOverhead:   450 * time.Nanosecond,
		MsgIssueGap:    300 * time.Nanosecond,
		CoalesceFrames: true,
		UsernsAware:    true,
		RunSigma:       0.004,
	}
}

// DeviceStats aggregates NIC counters.
type DeviceStats struct {
	MsgsSent      uint64
	MsgsRecv      uint64
	BytesSent     uint64
	BytesRecv     uint64
	AuthSuccesses uint64
	AuthFailures  map[AuthFailure]uint64
	UnroutedPkts  uint64 // packets that matched no local endpoint
	RMAOps        uint64 // one-sided operations served
	RMAFaults     uint64 // one-sided operations rejected (key/bounds/perm)
}

// Device is one Cassini NIC plus the access-control state its kernel driver
// keeps. It implements fabric.Receiver.
type Device struct {
	Name string

	mu      sync.Mutex
	eng     *sim.Engine
	kern    *nsmodel.Kernel
	sw      *fabric.Switch
	addr    fabric.Addr
	link    *fabric.HostLink
	cfg     DeviceConfig
	svcs    map[SvcID]*Svc
	nextSvc SvcID
	eps     map[int]*Endpoint // by local endpoint index
	nextEP  int
	nextMsg uint64
	// vniRefs counts how many services reference each VNI, so the switch
	// grant is revoked only when the last service goes away.
	vniRefs map[fabric.VNI]int
	stats   DeviceStats
	// reassembly state, keyed by (src, msgID)
	partial map[partialKey]*partialMsg
	// RMA state: registered memory regions and requester completions.
	nextMR     uint64
	mrs        map[MRKey]*MemoryRegion
	rmaWaiters map[uint64]func()
}

type partialKey struct {
	src fabric.Addr
	id  uint64
}

type partialMsg struct {
	got   int
	total int // unknown until Last seen; 0 = unknown
	dst   int
	vni   fabric.VNI
}

// NewDevice creates a NIC attached to sw, authenticated against kern.
func NewDevice(name string, eng *sim.Engine, kern *nsmodel.Kernel, sw *fabric.Switch, cfg DeviceConfig) *Device {
	if cfg.RunSigma > 0 {
		f := eng.Rand().NormFloat64() * cfg.RunSigma
		if f > 3*cfg.RunSigma {
			f = 3 * cfg.RunSigma
		}
		if f < -3*cfg.RunSigma {
			f = -3 * cfg.RunSigma
		}
		cfg.SendOverhead = time.Duration(float64(cfg.SendOverhead) * (1 + f))
		cfg.RecvOverhead = time.Duration(float64(cfg.RecvOverhead) * (1 + f))
		cfg.MsgIssueGap = time.Duration(float64(cfg.MsgIssueGap) * (1 + f))
	}
	d := &Device{
		Name:       name,
		eng:        eng,
		kern:       kern,
		sw:         sw,
		cfg:        cfg,
		svcs:       make(map[SvcID]*Svc),
		nextSvc:    DefaultSvcID,
		eps:        make(map[int]*Endpoint),
		nextEP:     1,
		vniRefs:    make(map[fabric.VNI]int),
		partial:    make(map[partialKey]*partialMsg),
		mrs:        make(map[MRKey]*MemoryRegion),
		rmaWaiters: make(map[uint64]func()),
		stats:      DeviceStats{AuthFailures: make(map[AuthFailure]uint64)},
	}
	d.addr = sw.Attach(d)
	d.link = fabric.NewHostLink(eng, sw)
	// The driver ships with an unrestricted default service on VNI 1,
	// mirroring the out-of-the-box single-tenant configuration ("globally
	// accessible VNI" in the paper's vni:false baseline).
	def := &Svc{
		ID: DefaultSvcID,
		Desc: SvcDesc{
			Name:       "default",
			Restricted: false,
			VNIs:       []fabric.VNI{1},
			Limits:     DefaultLimits(),
		},
		Enabled: true,
	}
	d.svcs[DefaultSvcID] = def
	d.nextSvc = DefaultSvcID + 1
	d.retainVNIsLocked(def.Desc.VNIs)
	return d
}

// Addr returns the NIC's fabric address.
func (d *Device) Addr() fabric.Addr { return d.addr }

// Config returns the NIC model configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Stats returns a copy of the NIC counters.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.stats
	out.AuthFailures = make(map[AuthFailure]uint64, len(d.stats.AuthFailures))
	for k, v := range d.stats.AuthFailures {
		out.AuthFailures[k] = v
	}
	return out
}

func (d *Device) retainVNIsLocked(vnis []fabric.VNI) {
	for _, v := range vnis {
		if d.vniRefs[v] == 0 {
			// Programming the switch is a fabric-manager operation; the
			// driver model performs it directly.
			if err := d.sw.GrantVNI(d.addr, v); err != nil {
				panic(fmt.Sprintf("cxi: grant vni: %v", err))
			}
		}
		d.vniRefs[v]++
	}
}

func (d *Device) releaseVNIsLocked(vnis []fabric.VNI) {
	for _, v := range vnis {
		d.vniRefs[v]--
		if d.vniRefs[v] <= 0 {
			delete(d.vniRefs, v)
			if err := d.sw.RevokeVNI(d.addr, v); err != nil {
				panic(fmt.Sprintf("cxi: revoke vni: %v", err))
			}
		}
	}
}

// requireHostRoot implements the driver's privilege check for service
// management: the caller must be root in the initial user namespace
// (CAP_SYS_ADMIN equivalent).
func (d *Device) requireHostRoot(caller nsmodel.PID) error {
	st, err := d.kern.Proc().ReadStatus(caller)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPrivilege, err)
	}
	if !st.HostUser || st.UID != 0 {
		return fmt.Errorf("%w: pid %d uid %d", ErrPrivilege, caller, st.UID)
	}
	return nil
}

// SvcAlloc creates a service. Privileged.
func (d *Device) SvcAlloc(caller nsmodel.PID, desc SvcDesc) (SvcID, error) {
	if err := d.requireHostRoot(caller); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if desc.Name != "" {
		for _, s := range d.svcs {
			if s.Desc.Name == desc.Name {
				return 0, fmt.Errorf("%w: %q", ErrDuplicateSvc, desc.Name)
			}
		}
	}
	if (desc.Limits == ResourceLimits{}) {
		desc.Limits = DefaultLimits()
	}
	id := d.nextSvc
	d.nextSvc++
	svc := &Svc{ID: id, Desc: desc, Enabled: true}
	d.svcs[id] = svc
	d.retainVNIsLocked(desc.VNIs)
	return id, nil
}

// SvcDestroy removes a service. It fails while endpoints created through the
// service are still open. Privileged.
func (d *Device) SvcDestroy(caller nsmodel.PID, id SvcID) error {
	if err := d.requireHostRoot(caller); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, ok := d.svcs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchService, id)
	}
	if svc.refs > 0 {
		return fmt.Errorf("%w: svc %d has %d endpoints", ErrServiceBusy, id, svc.refs)
	}
	delete(d.svcs, id)
	d.releaseVNIsLocked(svc.Desc.VNIs)
	return nil
}

// SvcSetEnabled enables or disables a service. Privileged.
func (d *Device) SvcSetEnabled(caller nsmodel.PID, id SvcID, enabled bool) error {
	if err := d.requireHostRoot(caller); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, ok := d.svcs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchService, id)
	}
	svc.Enabled = enabled
	return nil
}

// SvcGet returns a copy of the service.
func (d *Device) SvcGet(id SvcID) (Svc, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, ok := d.svcs[id]
	if !ok {
		return Svc{}, false
	}
	return *svc, true
}

// SvcList returns all services sorted by ID.
func (d *Device) SvcList() []Svc {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Svc, 0, len(d.svcs))
	for _, s := range d.svcs {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SvcFindByMember returns the IDs of services listing the given member,
// which the CNI plugin uses on DEL to find a container's services.
func (d *Device) SvcFindByMember(m Member) []SvcID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []SvcID
	for id, s := range d.svcs {
		for _, mm := range s.Desc.Members {
			if mm == m {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// authenticate matches the calling process against the service member list.
// This is the code path the paper extends: besides UID and GID members it
// accepts netns members, compared against the caller's netns inode obtained
// through procfs.
func (d *Device) authenticate(caller nsmodel.PID, svc *Svc) AuthFailure {
	if !svc.Desc.Restricted {
		return AuthOK
	}
	st, err := d.kern.Proc().ReadStatus(caller)
	if err != nil {
		return AuthNotMember
	}
	uid, gid := st.UID, st.GID
	if d.cfg.UsernsAware {
		uid, gid = st.HostUID, st.HostGID
	}
	for _, m := range svc.Desc.Members {
		switch m.Type {
		case MemberUID:
			if uint64(uid) == m.Value {
				return AuthOK
			}
		case MemberGID:
			if uint64(gid) == m.Value {
				return AuthOK
			}
		case MemberNetNS:
			if uint64(st.NetNS) == m.Value {
				return AuthOK
			}
		}
	}
	return AuthNotMember
}

// checkSvc validates an endpoint request against svc without consuming
// resources.
func (d *Device) checkSvc(caller nsmodel.PID, svc *Svc, vni fabric.VNI, tc fabric.TrafficClass) AuthFailure {
	if !svc.Enabled {
		return AuthDisabled
	}
	if fail := d.authenticate(caller, svc); fail != AuthOK {
		return fail
	}
	ok := false
	for _, v := range svc.Desc.VNIs {
		if v == vni {
			ok = true
			break
		}
	}
	if !ok {
		return AuthBadVNI
	}
	if len(svc.Desc.TCs) > 0 {
		ok = false
		for _, t := range svc.Desc.TCs {
			if t == tc {
				ok = true
				break
			}
		}
		if !ok {
			return AuthBadTC
		}
	}
	if svc.usedTXQs+1 > svc.Desc.Limits.MaxTXQs || svc.usedEQs+1 > svc.Desc.Limits.MaxEQs {
		return AuthLimits
	}
	return AuthOK
}

// msgDeliver is the pooled argument of a receive-overhead event: the
// reassembled message rides here instead of in a closure, so steady-state
// message delivery does not allocate.
type msgDeliver struct {
	ep  *Endpoint
	msg Message
}

var msgDeliverPool = sync.Pool{New: func() any { return new(msgDeliver) }}

func msgDeliverCall(a any) {
	md := a.(*msgDeliver)
	ep, msg := md.ep, md.msg
	md.ep = nil
	msgDeliverPool.Put(md)
	ep.deliver(msg)
}

// partialMsgPool recycles reassembly records; only multi-frame messages in
// frame-granular mode (CoalesceFrames off) ever allocate one.
var partialMsgPool = sync.Pool{New: func() any { return new(partialMsg) }}

// ReceivePacket implements fabric.Receiver: demultiplex by destination
// endpoint index, reassemble, and deliver after the receive overhead.
func (d *Device) ReceivePacket(p *fabric.Packet) {
	d.mu.Lock()
	ep, ok := d.eps[p.DstIdx]
	if !ok || ep.closed || ep.vni != p.VNI {
		d.stats.UnroutedPkts++
		d.mu.Unlock()
		return
	}
	if p.RMA != nil {
		work := d.handleRMALocked(p, ep)
		d.mu.Unlock()
		if work != nil {
			work()
		}
		return
	}
	size := p.PayloadBytes
	complete := p.Last
	key := partialKey{src: p.Src, id: p.MsgID}
	// The common case — a coalesced or single-frame message, no partial
	// state — never touches the reassembly map.
	if pm, started := d.partial[key]; started {
		pm.got += p.PayloadBytes
		size = pm.got
		if complete {
			delete(d.partial, key)
			*pm = partialMsg{}
			partialMsgPool.Put(pm)
		}
	} else if !complete {
		pm = partialMsgPool.Get().(*partialMsg)
		pm.got, pm.dst, pm.vni = p.PayloadBytes, p.DstIdx, p.VNI
		d.partial[key] = pm
	}
	if complete {
		d.stats.MsgsRecv++
		d.stats.BytesRecv += uint64(size)
	}
	d.mu.Unlock()

	if complete {
		md := msgDeliverPool.Get().(*msgDeliver)
		md.ep = ep
		md.msg = Message{Src: p.Src, SrcEP: p.SrcIdx, Size: size, VNI: p.VNI, TC: p.TC}
		d.eng.AfterCall(d.eng.Jitter(d.cfg.RecvOverhead, 0.02), msgDeliverCall, md)
	}
}
