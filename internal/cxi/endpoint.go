package cxi

import (
	"fmt"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

// Message is a fully reassembled RDMA message delivered to an endpoint.
type Message struct {
	Src fabric.Addr
	// SrcEP is the sending endpoint's index on Src, from the frame header's
	// initiator PID index; together (Src, SrcEP) name the sending endpoint
	// even when several endpoints share one NIC.
	SrcEP int
	Size  int
	VNI   fabric.VNI
	TC    fabric.TrafficClass
}

// Endpoint is an allocated RDMA endpoint: a handle to NIC queues bound to
// one service and one VNI. All communication after allocation is
// kernel-bypass; no further authentication happens (paper §II-C:
// "Authentication against CXI services is only performed during endpoint
// creation").
type Endpoint struct {
	dev    *Device
	svcID  SvcID
	idx    int
	vni    fabric.VNI
	tc     fabric.TrafficClass
	closed bool
	// issueAt is the earliest time the next message may be issued,
	// enforcing the per-endpoint message rate bound.
	issueAt sim.Time
	handler func(Message)
}

// EPAlloc allocates an endpoint through svc for the calling process. This is
// the authenticated operation: the driver reads the caller's identity (UID/
// GID via userns-aware credentials, netns inode via procfs) and matches it
// against the service's member list, then validates the requested VNI,
// traffic class and resource limits.
func (d *Device) EPAlloc(caller nsmodel.PID, svcID SvcID, vni fabric.VNI, tc fabric.TrafficClass) (*Endpoint, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, ok := d.svcs[svcID]
	if !ok {
		d.stats.AuthFailures[AuthNoService]++
		return nil, fmt.Errorf("%w: %d", ErrNoSuchService, svcID)
	}
	if fail := d.checkSvc(caller, svc, vni, tc); fail != AuthOK {
		d.stats.AuthFailures[fail]++
		switch fail {
		case AuthDisabled:
			return nil, fmt.Errorf("%w: svc %d", ErrServiceDisabled, svcID)
		case AuthNotMember:
			return nil, fmt.Errorf("%w: pid %d svc %d", ErrNotAuthorized, caller, svcID)
		case AuthBadVNI:
			return nil, fmt.Errorf("%w: vni %d svc %d", ErrVNINotInService, vni, svcID)
		case AuthBadTC:
			return nil, fmt.Errorf("%w: tc %v svc %d", ErrTCNotInService, tc, svcID)
		case AuthLimits:
			return nil, fmt.Errorf("%w: svc %d", ErrResourceLimit, svcID)
		}
	}
	d.stats.AuthSuccesses++
	svc.usedTXQs++
	svc.usedEQs++
	svc.refs++
	ep := &Endpoint{dev: d, svcID: svcID, idx: d.nextEP, vni: vni, tc: tc}
	d.nextEP++
	d.eps[ep.idx] = ep
	return ep, nil
}

// Idx returns the endpoint's local index (the address peers send to).
func (ep *Endpoint) Idx() int { return ep.idx }

// VNI returns the virtual network the endpoint is bound to.
func (ep *Endpoint) VNI() fabric.VNI { return ep.vni }

// NICAddr returns the fabric address of the owning NIC.
func (ep *Endpoint) NICAddr() fabric.Addr { return ep.dev.Addr() }

// OnMessage registers the receive handler. Messages arriving with no
// handler registered are dropped (real NICs would back-pressure; the
// workloads in this repository always register handlers first).
func (ep *Endpoint) OnMessage(fn func(Message)) { ep.handler = fn }

func (ep *Endpoint) deliver(m Message) {
	if ep.closed || ep.handler == nil {
		return
	}
	ep.handler(m)
}

// Send transmits size bytes to the endpoint dstIdx on NIC dst. onComplete,
// if non-nil, fires when the NIC reports local completion (last bit has
// left the host link). Send must be called from within the event loop.
//
// The data path performs no authentication or service lookup: the VNI and
// traffic class were fixed at allocation. Isolation is enforced by the
// switch, per packet.
func (ep *Endpoint) Send(dst fabric.Addr, dstIdx int, size int, onComplete func()) error {
	if ep.closed {
		return ErrEndpointClosed
	}
	d := ep.dev
	d.mu.Lock()
	d.nextMsg++
	msgID := d.nextMsg
	d.stats.MsgsSent++
	d.stats.BytesSent += uint64(size)
	cfg := d.cfg
	d.mu.Unlock()

	now := d.eng.Now()
	issue := now
	if ep.issueAt > issue {
		issue = ep.issueAt
	}
	issue = issue.Add(d.eng.Jitter(cfg.MsgIssueGap, 0.02))
	ep.issueAt = issue

	mtu := d.sw.Config().MTU
	frames := (size + mtu - 1) / mtu
	if frames == 0 {
		frames = 1
	}
	start := issue.Add(d.eng.Jitter(cfg.SendOverhead, 0.02))

	send := func() {
		if cfg.CoalesceFrames || frames == 1 {
			last := d.link.Send(&fabric.Packet{
				Src: d.addr, Dst: dst, VNI: ep.vni, TC: ep.tc,
				PayloadBytes: size, Frames: frames, DstIdx: dstIdx, SrcIdx: ep.idx,
				MsgID: msgID, Last: true,
			})
			if onComplete != nil {
				d.eng.At(last, onComplete)
			}
			return
		}
		var last sim.Time
		remaining := size
		off := 0
		for f := 0; f < frames; f++ {
			chunk := mtu
			if chunk > remaining {
				chunk = remaining
			}
			if chunk == 0 {
				chunk = 0 // zero-byte message: single empty frame handled above
			}
			last = d.link.Send(&fabric.Packet{
				Src: d.addr, Dst: dst, VNI: ep.vni, TC: ep.tc,
				PayloadBytes: chunk, Frames: 1, DstIdx: dstIdx, SrcIdx: ep.idx,
				MsgID: msgID, Offset: off, Last: f == frames-1,
			})
			off += chunk
			remaining -= chunk
		}
		if onComplete != nil {
			d.eng.At(last, onComplete)
		}
	}
	d.eng.At(start, send)
	return nil
}

// Close releases the endpoint and its service resources.
func (ep *Endpoint) Close() {
	if ep.closed {
		return
	}
	d := ep.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	ep.closed = true
	delete(d.eps, ep.idx)
	if svc, ok := d.svcs[ep.svcID]; ok {
		svc.usedTXQs--
		svc.usedEQs--
		svc.refs--
	}
}
