package cxi

import (
	"fmt"
	"sync"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

// Message is a fully reassembled RDMA message delivered to an endpoint.
type Message struct {
	Src fabric.Addr
	// SrcEP is the sending endpoint's index on Src, from the frame header's
	// initiator PID index; together (Src, SrcEP) name the sending endpoint
	// even when several endpoints share one NIC.
	SrcEP int
	Size  int
	VNI   fabric.VNI
	TC    fabric.TrafficClass
}

// Endpoint is an allocated RDMA endpoint: a handle to NIC queues bound to
// one service and one VNI. All communication after allocation is
// kernel-bypass; no further authentication happens (paper §II-C:
// "Authentication against CXI services is only performed during endpoint
// creation").
type Endpoint struct {
	dev    *Device
	svcID  SvcID
	idx    int
	vni    fabric.VNI
	tc     fabric.TrafficClass
	closed bool
	// issueAt is the earliest time the next message may be issued,
	// enforcing the per-endpoint message rate bound.
	issueAt sim.Time
	handler func(Message)
	// fidelity selects the fabric execution mode for this endpoint's
	// sends; the zero value is exact packet fidelity.
	fidelity fabric.Fidelity
}

// SetFidelity selects the fabric fidelity for subsequent sends: flow or
// hybrid transfers attempt the analytic fast path and fall back to the
// packet path per fabric.Fidelity's contract. Safe to change between
// sends; in-flight messages keep the mode they were issued under.
func (ep *Endpoint) SetFidelity(f fabric.Fidelity) { ep.fidelity = f }

// Fidelity returns the endpoint's current fabric fidelity mode.
func (ep *Endpoint) Fidelity() fabric.Fidelity { return ep.fidelity }

// EPAlloc allocates an endpoint through svc for the calling process. This is
// the authenticated operation: the driver reads the caller's identity (UID/
// GID via userns-aware credentials, netns inode via procfs) and matches it
// against the service's member list, then validates the requested VNI,
// traffic class and resource limits.
func (d *Device) EPAlloc(caller nsmodel.PID, svcID SvcID, vni fabric.VNI, tc fabric.TrafficClass) (*Endpoint, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, ok := d.svcs[svcID]
	if !ok {
		d.stats.AuthFailures[AuthNoService]++
		return nil, fmt.Errorf("%w: %d", ErrNoSuchService, svcID)
	}
	if fail := d.checkSvc(caller, svc, vni, tc); fail != AuthOK {
		d.stats.AuthFailures[fail]++
		switch fail {
		case AuthDisabled:
			return nil, fmt.Errorf("%w: svc %d", ErrServiceDisabled, svcID)
		case AuthNotMember:
			return nil, fmt.Errorf("%w: pid %d svc %d", ErrNotAuthorized, caller, svcID)
		case AuthBadVNI:
			return nil, fmt.Errorf("%w: vni %d svc %d", ErrVNINotInService, vni, svcID)
		case AuthBadTC:
			return nil, fmt.Errorf("%w: tc %v svc %d", ErrTCNotInService, tc, svcID)
		case AuthLimits:
			return nil, fmt.Errorf("%w: svc %d", ErrResourceLimit, svcID)
		}
	}
	d.stats.AuthSuccesses++
	svc.usedTXQs++
	svc.usedEQs++
	svc.refs++
	ep := &Endpoint{dev: d, svcID: svcID, idx: d.nextEP, vni: vni, tc: tc}
	d.nextEP++
	d.eps[ep.idx] = ep
	return ep, nil
}

// Idx returns the endpoint's local index (the address peers send to).
func (ep *Endpoint) Idx() int { return ep.idx }

// VNI returns the virtual network the endpoint is bound to.
func (ep *Endpoint) VNI() fabric.VNI { return ep.vni }

// NICAddr returns the fabric address of the owning NIC.
func (ep *Endpoint) NICAddr() fabric.Addr { return ep.dev.Addr() }

// OnMessage registers the receive handler. Messages arriving with no
// handler registered are dropped (real NICs would back-pressure; the
// workloads in this repository always register handlers first).
func (ep *Endpoint) OnMessage(fn func(Message)) { ep.handler = fn }

func (ep *Endpoint) deliver(m Message) {
	if ep.closed || ep.handler == nil {
		return
	}
	ep.handler(m)
}

// Send transmits size bytes to the endpoint dstIdx on NIC dst. onComplete,
// if non-nil, fires when the NIC reports local completion (last bit has
// left the host link). Send must be called from within the event loop.
//
// The data path performs no authentication or service lookup: the VNI and
// traffic class were fixed at allocation. Isolation is enforced by the
// switch, per packet.
func (ep *Endpoint) Send(dst fabric.Addr, dstIdx int, size int, onComplete func()) error {
	if ep.closed {
		return ErrEndpointClosed
	}
	d := ep.dev
	d.mu.Lock()
	d.nextMsg++
	msgID := d.nextMsg
	d.stats.MsgsSent++
	d.stats.BytesSent += uint64(size)
	cfg := d.cfg
	d.mu.Unlock()

	now := d.eng.Now()
	issue := now
	if ep.issueAt > issue {
		issue = ep.issueAt
	}
	issue = issue.Add(d.eng.Jitter(cfg.MsgIssueGap, 0.02))
	ep.issueAt = issue

	mtu := d.sw.Config().MTU
	frames := (size + mtu - 1) / mtu
	if frames == 0 {
		frames = 1
	}
	start := issue.Add(d.eng.Jitter(cfg.SendOverhead, 0.02))

	sa := sendArgPool.Get().(*sendArg)
	*sa = sendArg{ep: ep, dst: dst, dstIdx: dstIdx, size: size, frames: frames,
		msgID: msgID, onComplete: onComplete}
	d.eng.AtCall(start, sendCall, sa)
	return nil
}

// sendArg is the pooled bookkeeping of one in-flight send: the DMA-issue
// event carries it instead of a closure, so the per-message transmit path
// does not allocate.
type sendArg struct {
	ep         *Endpoint
	dst        fabric.Addr
	dstIdx     int
	size       int
	frames     int
	msgID      uint64
	onComplete func()
	// pkt is scratch for the flow fast path: SendFlow's packet lives here
	// rather than in a literal so the attempt stays allocation-free even
	// when it declines and the packet path runs instead.
	pkt fabric.Packet
}

var sendArgPool = sync.Pool{New: func() any { return new(sendArg) }}

// sendCall runs when the send overhead has elapsed: it serializes the
// message onto the host link as one coalesced burst or frame by frame, and
// schedules the local-completion callback at the time the last bit leaves
// the NIC.
func sendCall(a any) {
	sa := a.(*sendArg)
	ep, d := sa.ep, sa.ep.dev
	var last sim.Time
	sent := false
	if ep.fidelity != fabric.FidelityPacket {
		// Flow fast path: the whole message as one analytic transfer. The
		// elision credit covers the events the packet path would have run,
		// frame-granular or coalesced.
		packets := sa.frames
		if d.cfg.CoalesceFrames {
			packets = 1
		}
		sa.pkt = fabric.Packet{
			Src: d.addr, Dst: sa.dst, VNI: ep.vni, TC: ep.tc,
			PayloadBytes: sa.size, Frames: sa.frames, DstIdx: sa.dstIdx, SrcIdx: ep.idx,
			MsgID: sa.msgID, Last: true,
		}
		last, sent = d.link.SendFlow(&sa.pkt, ep.fidelity, packets)
	}
	switch {
	case sent:
		// Flow path completed the transfer; last is the local completion.
	case d.cfg.CoalesceFrames || sa.frames == 1:
		last = d.link.Send(&fabric.Packet{
			Src: d.addr, Dst: sa.dst, VNI: ep.vni, TC: ep.tc,
			PayloadBytes: sa.size, Frames: sa.frames, DstIdx: sa.dstIdx, SrcIdx: ep.idx,
			MsgID: sa.msgID, Last: true,
		})
	default:
		mtu := d.sw.Config().MTU
		remaining := sa.size
		off := 0
		for f := 0; f < sa.frames; f++ {
			chunk := mtu
			if chunk > remaining {
				chunk = remaining
			}
			last = d.link.Send(&fabric.Packet{
				Src: d.addr, Dst: sa.dst, VNI: ep.vni, TC: ep.tc,
				PayloadBytes: chunk, Frames: 1, DstIdx: sa.dstIdx, SrcIdx: ep.idx,
				MsgID: sa.msgID, Offset: off, Last: f == sa.frames-1,
			})
			off += chunk
			remaining -= chunk
		}
	}
	onComplete := sa.onComplete
	*sa = sendArg{}
	sendArgPool.Put(sa)
	if onComplete != nil {
		d.eng.At(last, onComplete)
	}
}

// Close releases the endpoint and its service resources.
func (ep *Endpoint) Close() {
	if ep.closed {
		return
	}
	d := ep.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	ep.closed = true
	delete(d.eps, ep.idx)
	if svc, ok := d.svcs[ep.svcID]; ok {
		svc.usedTXQs--
		svc.usedEQs--
		svc.refs--
	}
}
