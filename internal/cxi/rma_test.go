package cxi

import (
	"testing"
	"time"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

// rmaRig builds two endpoints on the default service with an MR on B.
func rmaRig(t *testing.T, access MRAccess) (*rig, *Endpoint, *Endpoint, *MemoryRegion) {
	t.Helper()
	r := newRig(t)
	pa, _ := r.kern.Spawn("a", 0, 0, 0, 0)
	pb, _ := r.kern.Spawn("b", 0, 0, 0, 0)
	epA, err := r.devA.EPAlloc(pa.PID, DefaultSvcID, 1, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := r.devB.EPAlloc(pb.PID, DefaultSvcID, 1, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := epB.RegisterMR(1<<20, access)
	if err != nil {
		t.Fatal(err)
	}
	return r, epA, epB, mr
}

func TestRMAWriteCompletes(t *testing.T) {
	r, epA, epB, mr := rmaRig(t, MRRemoteRead|MRRemoteWrite)
	completed := false
	r.eng.After(0, func() {
		if err := epA.Write(r.devB.Addr(), epB.Idx(), mr.Key, 0, 64*1024, func() { completed = true }); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if !completed {
		t.Fatal("write completion never fired")
	}
	if st := r.devB.Stats(); st.RMAOps != 1 || st.RMAFaults != 0 {
		t.Errorf("target stats = %+v", st)
	}
}

func TestRMAReadReturnsData(t *testing.T) {
	r, epA, epB, mr := rmaRig(t, MRRemoteRead)
	var doneAt sim.Time
	r.eng.After(0, func() {
		if err := epA.Read(r.devB.Addr(), epB.Idx(), mr.Key, 0, 1<<20, func() { doneAt = r.eng.Now() }); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	// A 1 MB read must take at least the wire time of 1 MB (~42 µs).
	if doneAt < sim.Time(40*time.Microsecond) {
		t.Errorf("1MB read completed in %v — data leg not modelled", doneAt)
	}
}

func TestRMAWriteFaultOnBounds(t *testing.T) {
	r, epA, epB, mr := rmaRig(t, MRRemoteWrite)
	completed := false
	r.eng.After(0, func() {
		// Offset+length exceeds the 1 MB region.
		if err := epA.Write(r.devB.Addr(), epB.Idx(), mr.Key, 1<<20-10, 64, func() { completed = true }); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if completed {
		t.Fatal("out-of-bounds write completed")
	}
	if r.devB.Stats().RMAFaults != 1 {
		t.Errorf("faults = %d", r.devB.Stats().RMAFaults)
	}
}

func TestRMAPermissionEnforced(t *testing.T) {
	r, epA, epB, mr := rmaRig(t, MRRemoteRead) // no write permission
	completed := false
	r.eng.After(0, func() {
		_ = epA.Write(r.devB.Addr(), epB.Idx(), mr.Key, 0, 64, func() { completed = true })
	})
	r.eng.Run()
	if completed {
		t.Fatal("write to read-only MR completed")
	}
	if r.devB.Stats().RMAFaults != 1 {
		t.Errorf("faults = %d", r.devB.Stats().RMAFaults)
	}
}

func TestRMAUnknownKeyFaults(t *testing.T) {
	r, epA, epB, _ := rmaRig(t, MRRemoteWrite)
	completed := false
	r.eng.After(0, func() {
		_ = epA.Write(r.devB.Addr(), epB.Idx(), MRKey(9999), 0, 64, func() { completed = true })
	})
	r.eng.Run()
	if completed || r.devB.Stats().RMAFaults != 1 {
		t.Errorf("completed=%v faults=%d", completed, r.devB.Stats().RMAFaults)
	}
}

func TestRMADeregisteredMRFaults(t *testing.T) {
	r, epA, epB, mr := rmaRig(t, MRRemoteWrite)
	epB.DeregisterMR(mr)
	completed := false
	r.eng.After(0, func() {
		_ = epA.Write(r.devB.Addr(), epB.Idx(), mr.Key, 0, 64, func() { completed = true })
	})
	r.eng.Run()
	if completed {
		t.Fatal("write to deregistered MR completed")
	}
}

func TestRMACrossVNIBlocked(t *testing.T) {
	// Endpoint on VNI 10 cannot reach an MR registered through an endpoint
	// on VNI 20: the switch drops the op before the NIC even sees it.
	r := newRig(t)
	nsA := r.kern.NewNetNS("a")
	nsB := r.kern.NewNetNS("b")
	idA := r.svc(t, r.devA, SvcDesc{Name: "a", Restricted: true,
		Members: []Member{NetNSMember(nsA.Inode)}, VNIs: []fabric.VNI{10}})
	idB := r.svc(t, r.devB, SvcDesc{Name: "b", Restricted: true,
		Members: []Member{NetNSMember(nsB.Inode)}, VNIs: []fabric.VNI{20}})
	pa, _ := r.kern.Spawn("a", 0, 0, nsA.Inode, 0)
	pb, _ := r.kern.Spawn("b", 0, 0, nsB.Inode, 0)
	epA, _ := r.devA.EPAlloc(pa.PID, idA, 10, fabric.TCDedicated)
	epB, _ := r.devB.EPAlloc(pb.PID, idB, 20, fabric.TCDedicated)
	mr, _ := epB.RegisterMR(4096, MRRemoteWrite)
	completed := false
	r.eng.After(0, func() {
		_ = epA.Write(r.devB.Addr(), epB.Idx(), mr.Key, 0, 64, func() { completed = true })
	})
	r.eng.Run()
	if completed {
		t.Fatal("cross-VNI RMA write completed")
	}
	if r.devB.Stats().RMAOps != 0 {
		t.Error("RMA op reached the target NIC across VNIs")
	}
}

func TestRegisterMROnClosedEndpoint(t *testing.T) {
	r := newRig(t)
	p, _ := r.kern.Spawn("a", 0, 0, 0, 0)
	ep, _ := r.devA.EPAlloc(p.PID, DefaultSvcID, 1, fabric.TCDedicated)
	ep.Close()
	if _, err := ep.RegisterMR(64, MRRemoteRead); err == nil {
		t.Error("RegisterMR on closed endpoint succeeded")
	}
	if err := ep.Write(r.devB.Addr(), 1, 1, 0, 1, nil); err == nil {
		t.Error("Write on closed endpoint succeeded")
	}
	if err := ep.Read(r.devB.Addr(), 1, 1, 0, 1, nil); err == nil {
		t.Error("Read on closed endpoint succeeded")
	}
}

func TestMRKeyString(t *testing.T) {
	if MRKey(7).String() != "rkey-7" {
		t.Errorf("String = %q", MRKey(7).String())
	}
}
