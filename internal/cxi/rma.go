package cxi

import (
	"errors"
	"fmt"

	"github.com/caps-sim/shs-k8s/internal/fabric"
)

// RMA errors.
var (
	ErrNoSuchMR     = errors.New("cxi: no such memory region")
	ErrMRBounds     = errors.New("cxi: access outside memory region")
	ErrMRPermission = errors.New("cxi: memory region permission denied")
)

// MRKey is the remote key naming a registered memory region, exchanged out
// of band exactly like an RDMA rkey.
type MRKey uint64

// MRAccess are memory-region permission bits.
type MRAccess uint8

// Access bits.
const (
	MRRemoteRead MRAccess = 1 << iota
	MRRemoteWrite
)

// MemoryRegion is a registered buffer exposed for remote access. The model
// tracks size and permissions, not contents: one-sided operations move
// byte counts, which is what the performance and isolation behaviour
// depends on.
type MemoryRegion struct {
	Key    MRKey
	Size   int
	Access MRAccess
	ep     *Endpoint
}

// RegisterMR exposes size bytes through the endpoint with the given
// permissions. Registration is a local, unauthenticated operation (the
// endpoint was already authenticated at allocation); the returned key is
// valid only on this endpoint's VNI.
func (ep *Endpoint) RegisterMR(size int, access MRAccess) (*MemoryRegion, error) {
	if ep.closed {
		return nil, ErrEndpointClosed
	}
	d := ep.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextMR++
	mr := &MemoryRegion{Key: MRKey(d.nextMR), Size: size, Access: access, ep: ep}
	d.mrs[mr.Key] = mr
	return mr, nil
}

// DeregisterMR revokes the region.
func (ep *Endpoint) DeregisterMR(mr *MemoryRegion) {
	d := ep.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.mrs, mr.Key)
}

// rmaOp describes a one-sided operation carried in a packet's metadata.
type rmaOp struct {
	write  bool
	key    MRKey
	offset int
	length int
	// reply, for reads: the requester's endpoint index awaiting data.
	replyEP int
}

// Write performs an RDMA write: size bytes pushed into the remote region
// (dstKey, dstOffset) on NIC dst. onComplete fires at *remote* completion
// acknowledgement (one network round trip after the data lands), matching
// fi_write + completion semantics. Invalid key/bounds/permissions cause the
// remote NIC to drop the operation and no completion ever fires (the NIC
// would raise an error event; callers in this repository use timeouts).
func (ep *Endpoint) Write(dst fabric.Addr, dstIdx int, dstKey MRKey, dstOffset, size int, onComplete func()) error {
	if ep.closed {
		return ErrEndpointClosed
	}
	return ep.sendRMA(dst, dstIdx, size, rmaOp{write: true, key: dstKey, offset: dstOffset, length: size, replyEP: ep.idx}, onComplete)
}

// Read performs an RDMA read: size bytes pulled from the remote region.
// onData fires when the data has fully arrived locally.
func (ep *Endpoint) Read(dst fabric.Addr, dstIdx int, srcKey MRKey, srcOffset, size int, onData func()) error {
	if ep.closed {
		return ErrEndpointClosed
	}
	// The request itself is a small control message; the data flows back.
	return ep.sendRMA(dst, dstIdx, 32, rmaOp{write: false, key: srcKey, offset: srcOffset, length: size, replyEP: ep.idx}, onData)
}

// sendRMA transmits an RMA operation as a tagged packet stream.
func (ep *Endpoint) sendRMA(dst fabric.Addr, dstIdx int, wireBytes int, op rmaOp, onComplete func()) error {
	d := ep.dev
	d.mu.Lock()
	d.nextMsg++
	msgID := d.nextMsg
	if onComplete != nil {
		d.rmaWaiters[msgID] = onComplete
	}
	d.mu.Unlock()

	cfg := d.cfg
	now := d.eng.Now()
	issue := now
	if ep.issueAt > issue {
		issue = ep.issueAt
	}
	issue = issue.Add(d.eng.Jitter(cfg.MsgIssueGap, 0.02))
	ep.issueAt = issue
	start := issue.Add(d.eng.Jitter(cfg.SendOverhead, 0.02))

	mtu := d.sw.Config().MTU
	frames := (wireBytes + mtu - 1) / mtu
	if frames == 0 {
		frames = 1
	}
	opCopy := op
	d.eng.At(start, func() {
		d.link.Send(&fabric.Packet{
			Src: d.addr, Dst: dst, VNI: ep.vni, TC: ep.tc,
			PayloadBytes: wireBytes, Frames: frames, DstIdx: dstIdx, SrcIdx: ep.idx,
			MsgID: msgID, Last: true,
			RMA: &fabric.RMAHeader{
				Write: opCopy.write, Key: uint64(opCopy.key),
				Offset: opCopy.offset, Length: opCopy.length, ReplyEP: opCopy.replyEP,
			},
		})
	})
	return nil
}

// handleRMA processes an arriving one-sided operation on the target NIC.
// Called with d.mu held from ReceivePacket; returns work to run unlocked.
func (d *Device) handleRMALocked(p *fabric.Packet, ep *Endpoint) func() {
	h := p.RMA
	if h.Ack {
		// Completion/data arriving back at the requester.
		waiter, ok := d.rmaWaiters[h.ReqID]
		if !ok {
			return nil
		}
		delete(d.rmaWaiters, h.ReqID)
		recvOv := d.cfg.RecvOverhead
		return func() {
			d.eng.After(d.eng.Jitter(recvOv, 0.02), waiter)
		}
	}
	mr, ok := d.mrs[MRKey(h.Key)]
	if !ok || mr.ep.closed || mr.ep.vni != p.VNI {
		d.stats.RMAFaults++
		return nil
	}
	if h.Offset < 0 || h.Length < 0 || h.Offset+h.Length > mr.Size {
		d.stats.RMAFaults++
		return nil
	}
	var need MRAccess
	if h.Write {
		need = MRRemoteWrite
	} else {
		need = MRRemoteRead
	}
	if mr.Access&need == 0 {
		d.stats.RMAFaults++
		return nil
	}
	d.stats.RMAOps++

	// Build the acknowledgement (write) or data return (read).
	src, reqID, replyEP := p.Src, p.MsgID, h.ReplyEP
	size := 16 // ack
	if !h.Write {
		size = h.Length // data flows back
	}
	tc := p.TC
	vni := p.VNI
	return func() {
		mtu := d.sw.Config().MTU
		frames := (size + mtu - 1) / mtu
		if frames == 0 {
			frames = 1
		}
		d.eng.After(d.eng.Jitter(d.cfg.RecvOverhead, 0.02), func() {
			d.link.Send(&fabric.Packet{
				Src: d.addr, Dst: src, VNI: vni, TC: tc,
				PayloadBytes: size, Frames: frames, DstIdx: replyEP, SrcIdx: ep.idx,
				MsgID: reqID, Last: true,
				RMA: &fabric.RMAHeader{Ack: true, ReqID: reqID},
			})
		})
	}
}

// String renders the key for diagnostics.
func (k MRKey) String() string { return fmt.Sprintf("rkey-%d", uint64(k)) }
