package cxi

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	kern *nsmodel.Kernel
	sw   *fabric.Switch
	devA *Device
	devB *Device
	root *nsmodel.Process // host root, used for privileged svc ops
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	kern := nsmodel.NewKernel()
	cfg := fabric.DefaultConfig()
	cfg.JitterFrac = 0
	sw := fabric.NewSwitch("s", eng, cfg)
	dcfg := DefaultDeviceConfig()
	devA := NewDevice("cxi0", eng, kern, sw, dcfg)
	devB := NewDevice("cxi1", eng, kern, sw, dcfg)
	root, err := kern.Spawn("root", 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, kern: kern, sw: sw, devA: devA, devB: devB, root: root}
}

func (r *rig) svc(t *testing.T, d *Device, desc SvcDesc) SvcID {
	t.Helper()
	id, err := d.SvcAlloc(r.root.PID, desc)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestDefaultServiceExists(t *testing.T) {
	r := newRig(t)
	svc, ok := r.devA.SvcGet(DefaultSvcID)
	if !ok {
		t.Fatal("default service missing")
	}
	if svc.Desc.Restricted {
		t.Error("default service should be unrestricted")
	}
	if !r.sw.HasVNI(r.devA.Addr(), 1) {
		t.Error("default VNI 1 not granted on switch")
	}
}

func TestSvcAllocRequiresHostRoot(t *testing.T) {
	r := newRig(t)
	user, _ := r.kern.Spawn("user", 1000, 1000, 0, 0)
	if _, err := r.devA.SvcAlloc(user.PID, SvcDesc{Name: "x"}); !errors.Is(err, ErrPrivilege) {
		t.Errorf("non-root SvcAlloc: %v, want ErrPrivilege", err)
	}
	// Container root (uid 0 in a userns) must also be rejected.
	uns := r.kern.NewUserNS("c", map[nsmodel.UID]nsmodel.UID{0: 100000}, nil)
	nns := r.kern.NewNetNS("c")
	croot, _ := r.kern.Spawn("croot", 0, 0, nns.Inode, uns.Inode)
	if _, err := r.devA.SvcAlloc(croot.PID, SvcDesc{Name: "y"}); !errors.Is(err, ErrPrivilege) {
		t.Errorf("container-root SvcAlloc: %v, want ErrPrivilege", err)
	}
}

func TestSvcAllocGrantsVNIsOnSwitch(t *testing.T) {
	r := newRig(t)
	id := r.svc(t, r.devA, SvcDesc{Name: "tenant", Restricted: true, VNIs: []fabric.VNI{42, 43}})
	for _, v := range []fabric.VNI{42, 43} {
		if !r.sw.HasVNI(r.devA.Addr(), v) {
			t.Errorf("vni %d not granted on switch", v)
		}
	}
	if err := r.devA.SvcDestroy(r.root.PID, id); err != nil {
		t.Fatal(err)
	}
	for _, v := range []fabric.VNI{42, 43} {
		if r.sw.HasVNI(r.devA.Addr(), v) {
			t.Errorf("vni %d still granted after destroy", v)
		}
	}
}

func TestVNIRefCountingAcrossServices(t *testing.T) {
	r := newRig(t)
	id1 := r.svc(t, r.devA, SvcDesc{Name: "a", VNIs: []fabric.VNI{7}})
	id2 := r.svc(t, r.devA, SvcDesc{Name: "b", VNIs: []fabric.VNI{7}})
	if err := r.devA.SvcDestroy(r.root.PID, id1); err != nil {
		t.Fatal(err)
	}
	if !r.sw.HasVNI(r.devA.Addr(), 7) {
		t.Error("vni revoked while another service still references it")
	}
	if err := r.devA.SvcDestroy(r.root.PID, id2); err != nil {
		t.Fatal(err)
	}
	if r.sw.HasVNI(r.devA.Addr(), 7) {
		t.Error("vni not revoked after last reference")
	}
}

func TestDuplicateSvcNameRejected(t *testing.T) {
	r := newRig(t)
	r.svc(t, r.devA, SvcDesc{Name: "dup"})
	if _, err := r.devA.SvcAlloc(r.root.PID, SvcDesc{Name: "dup"}); !errors.Is(err, ErrDuplicateSvc) {
		t.Errorf("duplicate name: %v, want ErrDuplicateSvc", err)
	}
}

func TestNetNSMemberAuthentication(t *testing.T) {
	r := newRig(t)
	nns := r.kern.NewNetNS("pod")
	other := r.kern.NewNetNS("otherpod")
	id := r.svc(t, r.devA, SvcDesc{
		Name: "pod-svc", Restricted: true,
		Members: []Member{NetNSMember(nns.Inode)},
		VNIs:    []fabric.VNI{100},
	})
	inPod, _ := r.kern.Spawn("app", 0, 0, nns.Inode, 0)
	outPod, _ := r.kern.Spawn("app2", 0, 0, other.Inode, 0)

	ep, err := r.devA.EPAlloc(inPod.PID, id, 100, fabric.TCDedicated)
	if err != nil {
		t.Fatalf("member netns EPAlloc failed: %v", err)
	}
	ep.Close()
	if _, err := r.devA.EPAlloc(outPod.PID, id, 100, fabric.TCDedicated); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("non-member netns EPAlloc: %v, want ErrNotAuthorized", err)
	}
}

// TestUIDForgeryDefeatsUIDMemberButNotNetNS reproduces the paper's attack:
// in a user namespace a process can assume any UID and so authenticate
// against UID-member services via the forged identity — when the driver is
// not userns-aware. The netns member type is immune because the process
// cannot change its netns.
func TestUIDForgeryDefeatsUIDMemberButNotNetNS(t *testing.T) {
	eng := sim.NewEngine(1)
	kern := nsmodel.NewKernel()
	fcfg := fabric.DefaultConfig()
	fcfg.JitterFrac = 0
	sw := fabric.NewSwitch("s", eng, fcfg)
	dcfg := DefaultDeviceConfig()
	dcfg.UsernsAware = false // unpatched driver
	dev := NewDevice("cxi0", eng, kern, sw, dcfg)
	root, _ := kern.Spawn("root", 0, 0, 0, 0)

	victimUID := nsmodel.UID(1001)
	uidSvc, err := dev.SvcAlloc(root.PID, SvcDesc{
		Name: "victim", Restricted: true,
		Members: []Member{UIDMember(victimUID)},
		VNIs:    []fabric.VNI{50},
	})
	if err != nil {
		t.Fatal(err)
	}
	podNS := kern.NewNetNS("victim-pod")
	nsSvc, err := dev.SvcAlloc(root.PID, SvcDesc{
		Name: "victim-ns", Restricted: true,
		Members: []Member{NetNSMember(podNS.Inode)},
		VNIs:    []fabric.VNI{51},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Attacker: container root in its own userns + netns, forges UID.
	uns := kern.NewUserNS("attacker", map[nsmodel.UID]nsmodel.UID{0: 200000}, nil)
	nns := kern.NewNetNS("attacker")
	evil, _ := kern.Spawn("evil", 0, 0, nns.Inode, uns.Inode)
	if err := evil.SetUID(victimUID); err != nil {
		t.Fatal(err)
	}

	// Against the unpatched (non-userns-aware) driver, UID forgery works:
	ep, err := dev.EPAlloc(evil.PID, uidSvc, 50, fabric.TCDedicated)
	if err != nil {
		t.Fatalf("expected forged-UID auth to succeed on unpatched driver, got %v", err)
	}
	ep.Close()

	// The netns member cannot be forged regardless of driver mode:
	if _, err := dev.EPAlloc(evil.PID, nsSvc, 51, fabric.TCDedicated); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("netns member forged?! err = %v", err)
	}
}

func TestUsernsAwareDriverBlocksUIDForgery(t *testing.T) {
	r := newRig(t) // UsernsAware: true
	victimUID := nsmodel.UID(1001)
	id := r.svc(t, r.devA, SvcDesc{
		Name: "victim", Restricted: true,
		Members: []Member{UIDMember(victimUID)},
		VNIs:    []fabric.VNI{50},
	})
	uns := r.kern.NewUserNS("attacker", map[nsmodel.UID]nsmodel.UID{0: 200000}, nil)
	nns := r.kern.NewNetNS("attacker")
	evil, _ := r.kern.Spawn("evil", 0, 0, nns.Inode, uns.Inode)
	if err := evil.SetUID(victimUID); err != nil {
		t.Fatal(err)
	}
	// The userns-aware driver maps the forged UID 1001 -> overflow (not
	// mapped), so membership fails.
	if _, err := r.devA.EPAlloc(evil.PID, id, 50, fabric.TCDedicated); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("userns-aware driver admitted forged UID: %v", err)
	}
	// The genuine victim on the host authenticates fine.
	victim, _ := r.kern.Spawn("victim", victimUID, 1001, 0, 0)
	ep, err := r.devA.EPAlloc(victim.PID, id, 50, fabric.TCDedicated)
	if err != nil {
		t.Fatalf("legitimate victim rejected: %v", err)
	}
	ep.Close()
}

func TestGIDMemberAuthentication(t *testing.T) {
	r := newRig(t)
	id := r.svc(t, r.devA, SvcDesc{
		Name: "grp", Restricted: true,
		Members: []Member{GIDMember(2000)},
		VNIs:    []fabric.VNI{60},
	})
	inGrp, _ := r.kern.Spawn("a", 1000, 2000, 0, 0)
	outGrp, _ := r.kern.Spawn("b", 1000, 3000, 0, 0)
	if _, err := r.devA.EPAlloc(inGrp.PID, id, 60, fabric.TCDedicated); err != nil {
		t.Errorf("group member rejected: %v", err)
	}
	if _, err := r.devA.EPAlloc(outGrp.PID, id, 60, fabric.TCDedicated); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("non-member admitted: %v", err)
	}
}

func TestEPAllocValidatesVNIAndTC(t *testing.T) {
	r := newRig(t)
	nns := r.kern.NewNetNS("pod")
	id := r.svc(t, r.devA, SvcDesc{
		Name: "svc", Restricted: true,
		Members: []Member{NetNSMember(nns.Inode)},
		VNIs:    []fabric.VNI{100},
		TCs:     []fabric.TrafficClass{fabric.TCDedicated},
	})
	p, _ := r.kern.Spawn("app", 0, 0, nns.Inode, 0)
	if _, err := r.devA.EPAlloc(p.PID, id, 999, fabric.TCDedicated); !errors.Is(err, ErrVNINotInService) {
		t.Errorf("bad vni: %v", err)
	}
	if _, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCLowLatency); !errors.Is(err, ErrTCNotInService) {
		t.Errorf("bad tc: %v", err)
	}
	if _, err := r.devA.EPAlloc(p.PID, SvcID(999), 100, fabric.TCDedicated); !errors.Is(err, ErrNoSuchService) {
		t.Errorf("bad svc: %v", err)
	}
}

func TestResourceLimits(t *testing.T) {
	r := newRig(t)
	nns := r.kern.NewNetNS("pod")
	id := r.svc(t, r.devA, SvcDesc{
		Name: "small", Restricted: true,
		Members: []Member{NetNSMember(nns.Inode)},
		VNIs:    []fabric.VNI{100},
		Limits:  ResourceLimits{MaxTXQs: 2, MaxEQs: 2, MaxCTs: 2},
	})
	p, _ := r.kern.Spawn("app", 0, 0, nns.Inode, 0)
	ep1, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCDedicated); !errors.Is(err, ErrResourceLimit) {
		t.Errorf("over-limit alloc: %v, want ErrResourceLimit", err)
	}
	ep1.Close()
	ep3, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCDedicated)
	if err != nil {
		t.Errorf("alloc after close failed: %v", err)
	}
	ep2.Close()
	ep3.Close()
	st := r.devA.Stats()
	if st.AuthFailures[AuthLimits] != 1 {
		t.Errorf("limit failures = %d, want 1", st.AuthFailures[AuthLimits])
	}
}

func TestSvcDestroyRefusedWhileEndpointsLive(t *testing.T) {
	r := newRig(t)
	nns := r.kern.NewNetNS("pod")
	id := r.svc(t, r.devA, SvcDesc{
		Name: "busy", Restricted: true,
		Members: []Member{NetNSMember(nns.Inode)}, VNIs: []fabric.VNI{100},
	})
	p, _ := r.kern.Spawn("app", 0, 0, nns.Inode, 0)
	ep, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.devA.SvcDestroy(r.root.PID, id); !errors.Is(err, ErrServiceBusy) {
		t.Errorf("destroy busy svc: %v, want ErrServiceBusy", err)
	}
	ep.Close()
	if err := r.devA.SvcDestroy(r.root.PID, id); err != nil {
		t.Errorf("destroy after close: %v", err)
	}
}

func TestDisabledService(t *testing.T) {
	r := newRig(t)
	nns := r.kern.NewNetNS("pod")
	id := r.svc(t, r.devA, SvcDesc{
		Name: "d", Restricted: true,
		Members: []Member{NetNSMember(nns.Inode)}, VNIs: []fabric.VNI{100},
	})
	if err := r.devA.SvcSetEnabled(r.root.PID, id, false); err != nil {
		t.Fatal(err)
	}
	p, _ := r.kern.Spawn("app", 0, 0, nns.Inode, 0)
	if _, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCDedicated); !errors.Is(err, ErrServiceDisabled) {
		t.Errorf("disabled svc alloc: %v", err)
	}
	if err := r.devA.SvcSetEnabled(r.root.PID, id, true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.devA.EPAlloc(p.PID, id, 100, fabric.TCDedicated); err != nil {
		t.Errorf("re-enabled svc alloc: %v", err)
	}
}

func TestSvcFindByMember(t *testing.T) {
	r := newRig(t)
	nns := r.kern.NewNetNS("pod")
	id1 := r.svc(t, r.devA, SvcDesc{Name: "s1", Restricted: true,
		Members: []Member{NetNSMember(nns.Inode)}, VNIs: []fabric.VNI{100}})
	id2 := r.svc(t, r.devA, SvcDesc{Name: "s2", Restricted: true,
		Members: []Member{NetNSMember(nns.Inode), UIDMember(5)}, VNIs: []fabric.VNI{101}})
	r.svc(t, r.devA, SvcDesc{Name: "s3", Restricted: true,
		Members: []Member{UIDMember(5)}, VNIs: []fabric.VNI{102}})
	got := r.devA.SvcFindByMember(NetNSMember(nns.Inode))
	if len(got) != 2 || got[0] != id1 || got[1] != id2 {
		t.Errorf("SvcFindByMember = %v, want [%d %d]", got, id1, id2)
	}
}

func TestEndToEndMessage(t *testing.T) {
	r := newRig(t)
	nnsA := r.kern.NewNetNS("podA")
	nnsB := r.kern.NewNetNS("podB")
	vni := fabric.VNI(77)
	idA := r.svc(t, r.devA, SvcDesc{Name: "a", Restricted: true,
		Members: []Member{NetNSMember(nnsA.Inode)}, VNIs: []fabric.VNI{vni}})
	idB := r.svc(t, r.devB, SvcDesc{Name: "b", Restricted: true,
		Members: []Member{NetNSMember(nnsB.Inode)}, VNIs: []fabric.VNI{vni}})
	pa, _ := r.kern.Spawn("a", 0, 0, nnsA.Inode, 0)
	pb, _ := r.kern.Spawn("b", 0, 0, nnsB.Inode, 0)
	epA, err := r.devA.EPAlloc(pa.PID, idA, vni, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := r.devB.EPAlloc(pb.PID, idB, vni, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	var got []Message
	epB.OnMessage(func(m Message) { got = append(got, m) })
	completed := false
	r.eng.After(0, func() {
		if err := epA.Send(r.devB.Addr(), epB.Idx(), 1<<20, func() { completed = true }); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	r.eng.Run()
	if !completed {
		t.Error("send completion never fired")
	}
	if len(got) != 1 {
		t.Fatalf("received %d messages, want 1", len(got))
	}
	if got[0].Size != 1<<20 || got[0].VNI != vni || got[0].Src != r.devA.Addr() {
		t.Errorf("message = %+v", got[0])
	}
	stA, stB := r.devA.Stats(), r.devB.Stats()
	if stA.MsgsSent != 1 || stA.BytesSent != 1<<20 {
		t.Errorf("devA stats %+v", stA)
	}
	if stB.MsgsRecv != 1 || stB.BytesRecv != 1<<20 {
		t.Errorf("devB stats %+v", stB)
	}
}

func TestCrossVNITrafficDropped(t *testing.T) {
	// Endpoint on VNI 10 cannot reach an endpoint bound to VNI 20 even on
	// the same NIC pair: the packet is dropped at the switch (ingress NIC
	// has 10, not 20... actually sender tags its own VNI 10; receiver EP is
	// on 20 so the device demux also refuses). We verify no delivery.
	r := newRig(t)
	nnsA := r.kern.NewNetNS("a")
	nnsB := r.kern.NewNetNS("b")
	idA := r.svc(t, r.devA, SvcDesc{Name: "a", Restricted: true,
		Members: []Member{NetNSMember(nnsA.Inode)}, VNIs: []fabric.VNI{10}})
	idB := r.svc(t, r.devB, SvcDesc{Name: "b", Restricted: true,
		Members: []Member{NetNSMember(nnsB.Inode)}, VNIs: []fabric.VNI{20}})
	pa, _ := r.kern.Spawn("a", 0, 0, nnsA.Inode, 0)
	pb, _ := r.kern.Spawn("b", 0, 0, nnsB.Inode, 0)
	epA, _ := r.devA.EPAlloc(pa.PID, idA, 10, fabric.TCDedicated)
	epB, _ := r.devB.EPAlloc(pb.PID, idB, 20, fabric.TCDedicated)
	delivered := 0
	epB.OnMessage(func(Message) { delivered++ })
	r.eng.After(0, func() {
		if err := epA.Send(r.devB.Addr(), epB.Idx(), 64, nil); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	r.eng.Run()
	if delivered != 0 {
		t.Fatal("cross-VNI message delivered")
	}
	if r.sw.Stats().Drops[fabric.DropVNIEgress] != 1 {
		t.Errorf("switch drops = %v, want one egress drop", r.sw.Stats().Drops)
	}
}

func TestSendOnClosedEndpoint(t *testing.T) {
	r := newRig(t)
	p, _ := r.kern.Spawn("app", 0, 0, 0, 0)
	ep, err := r.devA.EPAlloc(p.PID, DefaultSvcID, 1, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
	if err := ep.Send(r.devB.Addr(), 1, 64, nil); !errors.Is(err, ErrEndpointClosed) {
		t.Errorf("send on closed ep: %v", err)
	}
	ep.Close() // double close is a no-op
}

func TestMessageToUnknownEndpointCounted(t *testing.T) {
	r := newRig(t)
	p, _ := r.kern.Spawn("app", 0, 0, 0, 0)
	epA, err := r.devA.EPAlloc(p.PID, DefaultSvcID, 1, fabric.TCDedicated)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.After(0, func() {
		if err := epA.Send(r.devB.Addr(), 12345, 64, nil); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	r.eng.Run()
	if r.devB.Stats().UnroutedPkts != 1 {
		t.Errorf("unrouted = %d, want 1", r.devB.Stats().UnroutedPkts)
	}
}

func TestZeroByteMessage(t *testing.T) {
	r := newRig(t)
	pa, _ := r.kern.Spawn("a", 0, 0, 0, 0)
	pb, _ := r.kern.Spawn("b", 0, 0, 0, 0)
	epA, _ := r.devA.EPAlloc(pa.PID, DefaultSvcID, 1, fabric.TCDedicated)
	epB, _ := r.devB.EPAlloc(pb.PID, DefaultSvcID, 1, fabric.TCDedicated)
	var got *Message
	epB.OnMessage(func(m Message) { got = &m })
	r.eng.After(0, func() {
		if err := epA.Send(r.devB.Addr(), epB.Idx(), 0, nil); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("zero-byte message not delivered")
	}
	if got.Size != 0 {
		t.Errorf("size = %d, want 0", got.Size)
	}
}

func TestFrameGranularMatchesCoalesced(t *testing.T) {
	run := func(coalesce bool) sim.Time {
		eng := sim.NewEngine(9)
		kern := nsmodel.NewKernel()
		fcfg := fabric.DefaultConfig()
		fcfg.JitterFrac = 0
		sw := fabric.NewSwitch("s", eng, fcfg)
		dcfg := DefaultDeviceConfig()
		dcfg.CoalesceFrames = coalesce
		devA := NewDevice("a", eng, kern, sw, dcfg)
		devB := NewDevice("b", eng, kern, sw, dcfg)
		pa, _ := kern.Spawn("a", 0, 0, 0, 0)
		pb, _ := kern.Spawn("b", 0, 0, 0, 0)
		epA, _ := devA.EPAlloc(pa.PID, DefaultSvcID, 1, fabric.TCDedicated)
		epB, _ := devB.EPAlloc(pb.PID, DefaultSvcID, 1, fabric.TCDedicated)
		var arrived sim.Time
		epB.OnMessage(func(Message) { arrived = eng.Now() })
		eng.After(0, func() {
			if err := epA.Send(devB.Addr(), epB.Idx(), 256*1024, nil); err != nil {
				panic(err)
			}
		})
		eng.Run()
		return arrived
	}
	tc := run(true)
	tf := run(false)
	// Coalescing pays switch latency once; allow that much divergence.
	diff := tc.Sub(tf)
	if diff < 0 {
		diff = -diff
	}
	frames := 256 * 1024 / 2048
	if diff > fabric.DefaultConfig().SwitchLatency*sim.Duration(frames) {
		t.Errorf("coalesced %v vs frame-granular %v diverge too much", tc, tf)
	}
}

// Property: EPAlloc succeeds iff the caller's netns inode is in the member
// list, for arbitrary sets of member inodes.
func TestQuickNetNSMembership(t *testing.T) {
	f := func(memberSel []bool) bool {
		eng := sim.NewEngine(4)
		kern := nsmodel.NewKernel()
		fcfg := fabric.DefaultConfig()
		fcfg.JitterFrac = 0
		sw := fabric.NewSwitch("s", eng, fcfg)
		dev := NewDevice("d", eng, kern, sw, DefaultDeviceConfig())
		root, _ := kern.Spawn("root", 0, 0, 0, 0)

		type entry struct {
			ino    nsmodel.Inode
			member bool
			pid    nsmodel.PID
		}
		var entries []entry
		var members []Member
		for i, isMember := range memberSel {
			ns := kern.NewNetNS("ns")
			p, err := kern.Spawn("p", 0, 0, ns.Inode, 0)
			if err != nil {
				return false
			}
			entries = append(entries, entry{ns.Inode, isMember, p.PID})
			if isMember {
				members = append(members, NetNSMember(ns.Inode))
			}
			_ = i
		}
		id, err := dev.SvcAlloc(root.PID, SvcDesc{
			Name: "q", Restricted: true, Members: members, VNIs: []fabric.VNI{9},
			Limits: ResourceLimits{MaxTXQs: 1 << 20, MaxEQs: 1 << 20, MaxCTs: 1 << 20},
		})
		if err != nil {
			return false
		}
		for _, e := range entries {
			ep, err := dev.EPAlloc(e.pid, id, 9, fabric.TCDedicated)
			if e.member != (err == nil) {
				return false
			}
			if ep != nil {
				ep.Close()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

// Property: resource accounting never goes negative and limits are never
// exceeded under arbitrary alloc/close interleavings.
func TestQuickResourceAccounting(t *testing.T) {
	f := func(ops []bool, limit uint8) bool {
		lim := int(limit%8) + 1
		eng := sim.NewEngine(5)
		kern := nsmodel.NewKernel()
		fcfg := fabric.DefaultConfig()
		fcfg.JitterFrac = 0
		sw := fabric.NewSwitch("s", eng, fcfg)
		dev := NewDevice("d", eng, kern, sw, DefaultDeviceConfig())
		root, _ := kern.Spawn("root", 0, 0, 0, 0)
		ns := kern.NewNetNS("ns")
		p, _ := kern.Spawn("p", 0, 0, ns.Inode, 0)
		id, err := dev.SvcAlloc(root.PID, SvcDesc{
			Name: "q", Restricted: true, Members: []Member{NetNSMember(ns.Inode)},
			VNIs: []fabric.VNI{9}, Limits: ResourceLimits{MaxTXQs: lim, MaxEQs: lim, MaxCTs: lim},
		})
		if err != nil {
			return false
		}
		var open []*Endpoint
		for _, alloc := range ops {
			if alloc {
				ep, err := dev.EPAlloc(p.PID, id, 9, fabric.TCDedicated)
				if err == nil {
					open = append(open, ep)
				} else if len(open) < lim {
					return false // rejected below limit
				}
				if len(open) > lim {
					return false // exceeded limit
				}
			} else if len(open) > 0 {
				open[len(open)-1].Close()
				open = open[:len(open)-1]
			}
		}
		svc, _ := dev.SvcGet(id)
		return svc.refs == len(open)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}
