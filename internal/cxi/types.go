// Package cxi models the Cassini (CXI) NIC and its kernel driver, including
// the access-control machinery this reproduction extends: CXI services with
// UID, GID and — the paper's contribution — network-namespace (netns)
// members (paper §III-A).
//
// A CXI service (SVC) grants a set of authorized members access to a set of
// VNIs and caps the NIC resources (transmit queues, event queues, counters)
// its members may consume. Authentication happens once, at RDMA endpoint
// allocation: the driver inspects the calling process (via the simulated
// procfs) and matches its identity against the service's member list.
// Subsequent communication is kernel-bypass and carries no authentication,
// exactly as on real hardware — which is why the paper measures no
// systematic data-path overhead.
package cxi

import (
	"errors"
	"fmt"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
)

// SvcID identifies a CXI service on one NIC.
type SvcID int

// DefaultSvcID is the driver's built-in default service. On real systems it
// is unrestricted and intended for single-tenant hosts; multi-tenant
// deployments disable or restrict it.
const DefaultSvcID SvcID = 1

// MemberType selects how a service member is authenticated.
type MemberType int

// Member types. MemberNetNS is the extension introduced by the paper.
const (
	MemberUID MemberType = iota
	MemberGID
	MemberNetNS
)

// String names the member type using the driver's vocabulary.
func (t MemberType) String() string {
	switch t {
	case MemberUID:
		return "uid"
	case MemberGID:
		return "gid"
	case MemberNetNS:
		return "netns"
	default:
		return fmt.Sprintf("member(%d)", int(t))
	}
}

// Member is one authorized identity on a service.
type Member struct {
	Type MemberType
	// Value is a UID, GID, or netns inode depending on Type.
	Value uint64
}

// UIDMember, GIDMember and NetNSMember build members of each type.
func UIDMember(uid nsmodel.UID) Member     { return Member{Type: MemberUID, Value: uint64(uid)} }
func GIDMember(gid nsmodel.GID) Member     { return Member{Type: MemberGID, Value: uint64(gid)} }
func NetNSMember(ino nsmodel.Inode) Member { return Member{Type: MemberNetNS, Value: uint64(ino)} }

// ResourceLimits caps the NIC resources a service's members may consume.
// Zero values mean "driver default".
type ResourceLimits struct {
	MaxTXQs int // transmit command queues
	MaxEQs  int // event queues
	MaxCTs  int // counting events / triggered-op counters
}

// DefaultLimits are applied when a descriptor leaves limits at zero.
func DefaultLimits() ResourceLimits {
	return ResourceLimits{MaxTXQs: 64, MaxEQs: 64, MaxCTs: 64}
}

// SvcDesc describes a service to be allocated.
type SvcDesc struct {
	Name string
	// Restricted services authenticate members; unrestricted ones admit
	// any caller (the insecure single-tenant default).
	Restricted bool
	Members    []Member
	VNIs       []fabric.VNI
	Limits     ResourceLimits
	// TCs lists permitted traffic classes; empty means all.
	TCs []fabric.TrafficClass
}

// Svc is an allocated service.
type Svc struct {
	ID      SvcID
	Desc    SvcDesc
	Enabled bool
	// usage tracks live resource consumption by endpoints of this service.
	usedTXQs int
	usedEQs  int
	usedCTs  int
	// refs counts live endpoints, so destroy can refuse while busy.
	refs int
}

// Errors returned by the driver.
var (
	ErrNoSuchService   = errors.New("cxi: no such service")
	ErrNotAuthorized   = errors.New("cxi: not authorized for service")
	ErrVNINotInService = errors.New("cxi: vni not granted to service")
	ErrTCNotInService  = errors.New("cxi: traffic class not permitted by service")
	ErrResourceLimit   = errors.New("cxi: service resource limit exceeded")
	ErrServiceDisabled = errors.New("cxi: service disabled")
	ErrServiceBusy     = errors.New("cxi: service has live endpoints")
	ErrPrivilege       = errors.New("cxi: operation requires host root")
	ErrEndpointClosed  = errors.New("cxi: endpoint closed")
	ErrDuplicateSvc    = errors.New("cxi: duplicate service name")
)

// AuthFailure classifies authentication failures for driver counters.
type AuthFailure int

// Authentication failure reasons.
const (
	AuthOK AuthFailure = iota
	AuthNoService
	AuthNotMember
	AuthBadVNI
	AuthBadTC
	AuthLimits
	AuthDisabled
)

// String names the failure reason.
func (a AuthFailure) String() string {
	switch a {
	case AuthOK:
		return "ok"
	case AuthNoService:
		return "no_service"
	case AuthNotMember:
		return "not_member"
	case AuthBadVNI:
		return "bad_vni"
	case AuthBadTC:
		return "bad_tc"
	case AuthLimits:
		return "limits"
	case AuthDisabled:
		return "disabled"
	default:
		return fmt.Sprintf("auth(%d)", int(a))
	}
}
