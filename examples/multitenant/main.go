// Multitenant: demonstrates the paper's security properties with two
// tenants on one cluster (use-case 1 of the introduction):
//
//  1. Each tenant's job gets its own VNI; the Rosetta switch drops tenant
//     A's packets on tenant B's VNI at ingress (isolation).
//
//  2. A malicious container that forges its UID cannot authenticate against
//     the victim's CXI service: membership is by netns inode, which the
//     container cannot change.
//
//  3. Processes inside a pod — including container "root" — get RDMA access
//     with no UID/GID coordination at all.
//
//     go run ./examples/multitenant
package main

import (
	"errors"
	"fmt"
	"log"
	"strconv"
	"time"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/libcxi"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/stack"
	"github.com/caps-sim/shs-k8s/internal/vniapi"
)

func main() {
	st := stack.New(stack.DefaultOptions())
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		st.Cluster.CreateNamespace(tenant)
		job := k8s.EchoJob(tenant, "app", map[string]string{vniapi.Annotation: "true"})
		job.Spec.Parallelism = 2 // one pod per node: both NICs carry both tenants
		job.Spec.Template.RunDuration = time.Hour
		job.Spec.DeleteAfterFinished = false
		st.Cluster.SubmitJob(job)
	}
	st.Eng.RunFor(10 * time.Second)

	vniA := tenantVNI(st, "tenant-a")
	vniB := tenantVNI(st, "tenant-b")
	fmt.Printf("tenant-a VNI: %d, tenant-b VNI: %d\n", vniA, vniB)

	// Place a process in each tenant's pod.
	procA, nodeA := podProcess(st, "tenant-a")
	procB, nodeB := podProcess(st, "tenant-b")

	// (1) Fabric-level isolation: a rogue node (a port the fabric manager
	// never granted any VNI) injects a packet tagged with tenant B's VNI.
	// Rosetta drops it at ingress — strict VNI enforcement.
	drops := 0
	st.Switch.OnDrop(func(p *fabric.Packet, r fabric.DropReason) {
		drops++
		fmt.Printf("  switch dropped packet: vni=%d reason=%s\n", p.VNI, r)
	})
	rogue := st.Switch.Attach(dropSink{})
	st.Eng.After(0, func() {
		raw := &fabric.Packet{
			Src: rogue, Dst: nodeB.Device.Addr(),
			VNI: vniB, TC: fabric.TCDedicated, PayloadBytes: 64, Frames: 1,
		}
		// Inject below the driver, as a compromised host stack would.
		link := fabric.NewHostLink(st.Eng, st.Switch)
		link.Send(raw)
	})
	st.Eng.RunFor(time.Second)
	fmt.Printf("(1) rogue-port cross-VNI injection: %d packet(s) dropped at the switch\n\n", drops)

	// (2) UID forgery: tenant A's container root assumes tenant B's UID.
	// The netns member type makes this pointless — the CXI service for B's
	// pod only admits B's netns inode.
	if err := procA.SetUID(1001); err != nil {
		log.Fatal(err)
	}
	hA := libcxi.Open(nodeA.Device, procA.PID)
	_, err := hA.EPAllocAuto(vniB, fabric.TCDedicated)
	fmt.Printf("(2) forged-UID endpoint allocation on tenant-b VNI: %v\n", err)
	if err == nil {
		log.Fatal("SECURITY HOLE: forged UID authenticated")
	}
	if !errors.Is(err, libcxi.ErrNoMatchingService) {
		fmt.Printf("    (denied with: %v)\n", err)
	}
	fmt.Println()

	// (3) Legitimate access: tenant B's process (container root, arbitrary
	// UID) allocates on its own VNI via its netns.
	hB := libcxi.Open(nodeB.Device, procB.PID)
	ep, err := hB.EPAllocAuto(vniB, fabric.TCDedicated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(3) tenant-b in-pod allocation on own VNI %d: endpoint idx=%d ok\n", vniB, ep.Idx())
	ep.Close()

	// Driver-side accounting of the episode.
	for _, n := range st.Nodes {
		s := n.Device.Stats()
		fmt.Printf("%s driver: auth ok=%d, failures=%v\n", n.Name, s.AuthSuccesses, s.AuthFailures)
	}
}

// dropSink is the rogue port's receiver; it never gets anything because the
// switch filters the rogue's traffic.
type dropSink struct{}

func (dropSink) ReceivePacket(*fabric.Packet) {}

func tenantVNI(st *stack.Stack, ns string) fabric.VNI {
	for _, obj := range st.Cluster.Client.Lister(vniapi.KindVNI).List(ns) {
		cr := obj.(*k8s.Custom)
		v, err := strconv.ParseUint(cr.Spec[vniapi.SpecVNI], 10, 32)
		if err == nil {
			return fabric.VNI(v)
		}
	}
	log.Fatalf("no VNI for %s", ns)
	return 0
}

func podProcess(st *stack.Stack, ns string) (*nsmodel.Process, *stack.Node) {
	for _, obj := range st.Cluster.Client.Lister(k8s.KindPod).List(ns) {
		pod := obj.(*k8s.Pod)
		if pod.Status.Phase != k8s.PodRunning {
			continue
		}
		n, _ := st.NodeByName(pod.Spec.NodeName)
		p, err := n.Runtime.Exec(ns, pod.Meta.Name, "app", 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		return p, n
	}
	log.Fatalf("no running pod in %s", ns)
	return nil, nil
}
