// Vniclaim: demonstrates the VNI Claim ownership model (paper §III-C1,
// Listings 2+3): a claim is created first, two jobs redeem it by name and
// communicate with each other over the shared Virtual Network — something
// the Per-Resource model forbids — and claim deletion is blocked until the
// last user is gone.
//
//	go run ./examples/vniclaim
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/libfabric"
	"github.com/caps-sim/shs-k8s/internal/stack"
	"github.com/caps-sim/shs-k8s/internal/vniapi"
	"github.com/caps-sim/shs-k8s/internal/vnisvc"
)

func main() {
	st := stack.New(stack.DefaultOptions())
	st.Cluster.CreateNamespace("vnitest")

	// 1. Create the claim (Listing 2: VniClaim "vni-claim-test",
	//    spec.name "test").
	st.Cluster.Client.Create(vnisvc.NewClaim("vnitest", "vni-claim-test", "test"))
	st.Eng.RunFor(3 * time.Second)

	// 2. Two jobs redeem the claim via annotation vni:vni-claim-test
	//    (Listing 3) —
	//    e.g. a solver and a checkpointing service that must share a
	//    Virtual Network.
	for _, name := range []string{"solver", "checkpointer"} {
		job := k8s.EchoJob("vnitest", name, map[string]string{vniapi.Annotation: "vni-claim-test"})
		job.Spec.Template.RunDuration = time.Hour
		job.Spec.DeleteAfterFinished = false
		st.Cluster.SubmitJob(job)
	}
	st.Eng.RunFor(10 * time.Second)

	// 3. Both jobs hold the same VNI; the redeeming jobs' VNI CRD
	//    instances are "virtual" (non-owning).
	var shared fabric.VNI
	for _, obj := range st.Cluster.Client.Lister(vniapi.KindVNI).List("vnitest") {
		cr := obj.(*k8s.Custom)
		v, _ := strconv.ParseUint(cr.Spec[vniapi.SpecVNI], 10, 32)
		fmt.Printf("VNI CRD %-22s vni=%d job=%-14s virtual=%v\n",
			cr.Meta.Name, v, cr.Spec[vniapi.SpecJob], cr.Spec[vniapi.SpecVirtual] == "true")
		shared = fabric.VNI(v)
	}

	// 4. Cross-job RDMA: a process in the solver's pod talks to one in the
	//    checkpointer's pod over the claim's VNI.
	domSolver := podDomain(st, "solver", shared)
	domCkpt := podDomain(st, "checkpointer", shared)
	got := -1
	domCkpt.OnRecv(func(_ libfabric.Addr, size int) { got = size })
	st.Eng.After(0, func() {
		if err := domSolver.Send(domCkpt.Addr(), 1<<20, nil); err != nil {
			log.Fatal(err)
		}
	})
	st.Eng.RunFor(time.Second)
	fmt.Printf("\ncross-job transfer over claim VNI %d: checkpointer received %d bytes\n", shared, got)

	// 5. Claim deletion stalls while users remain.
	st.Cluster.Client.Delete(vniapi.KindVniClaim, "vnitest", "vni-claim-test")
	st.Eng.RunFor(5 * time.Second)
	_, stillThere := st.Cluster.Client.Get(vniapi.KindVniClaim, "vnitest", "vni-claim-test")
	fmt.Printf("claim deletion while 2 jobs use it: blocked=%v (stalled finalizations: %d)\n",
		stillThere, st.VNISvc.Endpoint.Stats().StalledFinals)

	// 6. Delete the jobs; the claim then finalizes and the VNI enters
	//    quarantine.
	for _, name := range []string{"solver", "checkpointer"} {
		st.Cluster.Client.Delete(k8s.KindJob, "vnitest", name)
	}
	st.Eng.RunFor(30 * time.Second)
	_, stillThere = st.Cluster.Client.Get(vniapi.KindVniClaim, "vnitest", "vni-claim-test")
	fmt.Printf("after job deletion: claim present=%v, db=%+v\n", stillThere, st.DB.Stats())

	// 7. Show the user bookkeeping from the audit log.
	fmt.Println("\naudit trail for the claim VNI:")
	for _, e := range st.DB.Audit() {
		if e.VNI == shared {
			fmt.Printf("  %-12s t=%s user=%s\n", e.Op, e.At, e.User)
		}
	}
}

// podDomain opens an RDMA domain inside the first running pod of a job.
func podDomain(st *stack.Stack, jobName string, vni fabric.VNI) *libfabric.Domain {
	for _, obj := range st.Cluster.Client.Lister(k8s.KindPod).List("vnitest") {
		pod := obj.(*k8s.Pod)
		if pod.Meta.Labels["job-name"] != jobName || pod.Status.Phase != k8s.PodRunning {
			continue
		}
		node, _ := st.NodeByName(pod.Spec.NodeName)
		proc, err := node.Runtime.Exec("vnitest", pod.Meta.Name, jobName, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		d, err := libfabric.OpenDomain(st.Eng, libfabric.Info{
			Device: node.Device, Caller: proc.PID, VNI: vni, TC: fabric.TCBulkData})
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	log.Fatalf("no running pod for job %s", jobName)
	return nil
}
