// Converged: the full HPC-Cloud convergence picture. Three VNI-management
// regimes share one fabric and one exclusive VNI pool:
//
//   - a Slurm batch job (classic HPC path: slurmd creates UID-member CXI
//     services during job creation, §II-C),
//   - a user-requested Dynamic RDMA Credential (the DRC path, §II-C),
//   - a Kubernetes job with the paper's VNI Service (the cloud path, §III).
//
// All three get distinct VNIs, all three communicate over the same switch,
// and none can reach the others' Virtual Networks.
//
//	go run ./examples/converged
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"github.com/caps-sim/shs-k8s/internal/cxi"
	"github.com/caps-sim/shs-k8s/internal/drc"
	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/slurm"
	"github.com/caps-sim/shs-k8s/internal/stack"
	"github.com/caps-sim/shs-k8s/internal/vniapi"
)

func main() {
	st := stack.New(stack.DefaultOptions())
	root, err := st.Kernel.Spawn("site-daemons", 0, 0, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// --- HPC path: Slurm ---
	slurmCtl := slurm.NewController(st.DB, st.Eng, root.PID, []*slurm.Node{
		{Name: "node0", Device: st.Nodes[0].Device},
		{Name: "node1", Device: st.Nodes[1].Device},
	})
	hpcJob, err := slurmCtl.Submit(3001, 3001, []string{"node0", "node1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slurm job %d: VNI %d, services on node0+node1 (UID-member auth)\n", hpcJob.ID, hpcJob.VNI)

	// --- User path: DRC ---
	drcSvc := drc.NewService(st.DB, st.Eng, root.PID)
	cred, err := drcSvc.Acquire(4001)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := drcSvc.Redeem(cred.ID, 4001, st.Nodes[0].Device); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drc credential %d: VNI %d, redeemed on node0\n", cred.ID, cred.VNI)

	// --- Cloud path: Kubernetes + VNI Service ---
	st.Cluster.CreateNamespace("cloud")
	kjob := k8s.EchoJob("cloud", "workflow", map[string]string{vniapi.Annotation: "true"})
	kjob.Spec.Template.RunDuration = time.Hour
	kjob.Spec.DeleteAfterFinished = false
	st.Cluster.SubmitJob(kjob)
	st.Eng.RunFor(10 * time.Second)
	k8sVNI := cloudVNI(st)
	fmt.Printf("k8s job workflow: VNI %d via VNI Service (netns-member auth)\n\n", k8sVNI)

	// Exclusivity across regimes.
	if hpcJob.VNI == cred.VNI || hpcJob.VNI == k8sVNI || cred.VNI == k8sVNI {
		log.Fatal("VNI exclusivity violated across management paths")
	}
	fmt.Println("VNI exclusivity across slurm/drc/k8s: ok")
	fmt.Printf("shared pool state: %+v\n\n", st.DB.Stats())

	// Cross-regime isolation: the Slurm user cannot allocate on the k8s
	// job's VNI, and the pod cannot allocate on the Slurm VNI.
	slurmUser, _ := st.Kernel.Spawn("mpi-rank", 3001, 3001, 0, 0)
	if _, err := st.Nodes[0].Device.EPAlloc(slurmUser.PID, mustSvc(slurmCtl, hpcJob.ID), k8sVNI, fabric.TCDedicated); err != nil {
		fmt.Printf("slurm user on k8s VNI: denied (%v)\n", errShort(err))
	} else {
		log.Fatal("slurm user reached k8s VNI")
	}
	pod := firstRunningPod(st, "cloud")
	node, _ := st.NodeByName(pod.Spec.NodeName)
	podProc, err := node.Runtime.Exec("cloud", pod.Meta.Name, "app", 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := node.Device.EPAlloc(podProc.PID, mustSvc(slurmCtl, hpcJob.ID), hpcJob.VNI, fabric.TCDedicated); err != nil {
		fmt.Printf("pod process on slurm VNI: denied (%v)\n", errShort(err))
	} else {
		log.Fatal("pod reached slurm VNI")
	}

	// Each regime works within its own domain.
	svc0, _ := slurmCtl.ServiceOn(hpcJob.ID, "node0")
	ep, err := st.Nodes[0].Device.EPAlloc(slurmUser.PID, svc0, hpcJob.VNI, fabric.TCDedicated)
	if err != nil {
		log.Fatal(err)
	}
	ep.Close()
	fmt.Println("slurm user on own VNI: ok")

	// Clean teardown of all three.
	if err := slurmCtl.Complete(hpcJob.ID); err != nil {
		log.Fatal(err)
	}
	if err := drcSvc.Withdraw(cred.ID, 4001, st.Nodes[0].Device); err != nil {
		log.Fatal(err)
	}
	if err := drcSvc.Release(cred.ID, 4001); err != nil {
		log.Fatal(err)
	}
	st.Cluster.Client.Delete(k8s.KindJob, "cloud", "workflow")
	st.Eng.RunFor(20 * time.Second)
	fmt.Printf("\nafter teardown: %+v (all VNIs quarantined, none allocated)\n", st.DB.Stats())
}

func cloudVNI(st *stack.Stack) fabric.VNI {
	for _, obj := range st.Cluster.Client.Lister(vniapi.KindVNI).List("cloud") {
		cr := obj.(*k8s.Custom)
		v, err := strconv.ParseUint(cr.Spec[vniapi.SpecVNI], 10, 32)
		if err == nil {
			return fabric.VNI(v)
		}
	}
	log.Fatal("no k8s VNI")
	return 0
}

func firstRunningPod(st *stack.Stack, ns string) *k8s.Pod {
	for _, obj := range st.Cluster.Client.Lister(k8s.KindPod).List(ns) {
		pod := obj.(*k8s.Pod)
		if pod.Status.Phase == k8s.PodRunning {
			return pod
		}
	}
	log.Fatal("no running pod")
	return nil
}

func mustSvc(ctl *slurm.Controller, id slurm.JobID) cxi.SvcID {
	svc, ok := ctl.ServiceOn(id, "node0")
	if !ok {
		log.Fatal("slurm service missing")
	}
	return svc
}

func errShort(err error) string {
	s := err.Error()
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
