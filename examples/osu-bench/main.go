// Osu-bench: run the OSU micro-benchmarks (osu_bw, osu_latency) across the
// paper's three measurement modes — directly on the host, in pods with the
// Slingshot integration (vni:true), and in pods on the globally accessible
// VNI (vni:false) — and print compact versions of Figures 5-8.
//
//	go run ./examples/osu-bench [-runs 3] [-full]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/caps-sim/shs-k8s/internal/harness"
)

func main() {
	runs := flag.Int("runs", 3, "repetitions per mode")
	full := flag.Bool("full", false, "full 1B..1MB size sweep (default: 8 sizes)")
	flag.Parse()

	for _, kind := range []harness.BenchKind{harness.BenchBw, harness.BenchLatency} {
		fig := &harness.CommFigure{Kind: kind}
		for _, m := range []struct {
			mode harness.CommMode
			dst  **harness.CommSeries
		}{
			{harness.ModeHost, &fig.Host},
			{harness.ModeVNITrue, &fig.VNITrue},
			{harness.ModeVNIFalse, &fig.VNIFalse},
		} {
			opts := harness.DefaultCommOptions(kind, m.mode)
			opts.Runs = *runs
			if !*full {
				opts.OSU.Sizes = []int{1, 8, 64, 512, 4096, 65536, 512 * 1024, 1 << 20}
			}
			fmt.Fprintf(os.Stderr, "running %s %s (%d runs)...\n", kind, m.mode, *runs)
			s, err := harness.RunComm(opts)
			if err != nil {
				log.Fatal(err)
			}
			*m.dst = s
		}
		unit := "MB/s"
		if kind == harness.BenchLatency {
			unit = "us"
		}
		fmt.Printf("\n== %s ==\n", kind)
		harness.RenderCommValues(os.Stdout, fig, unit)
		fmt.Printf("\n-- overhead vs host --\n")
		harness.RenderCommOverhead(os.Stdout, fig)
		fmt.Printf("\nmax |overhead|: vni:true %.2f%%, vni:false %.2f%% (paper: within 1%%)\n",
			fig.MaxAbsOverheadPct(harness.ModeVNITrue),
			fig.MaxAbsOverheadPct(harness.ModeVNIFalse))
	}
}
