// Quickstart: bring up the simulated two-node Slingshot-Kubernetes
// deployment, submit a job with the `vni: "true"` annotation (paper
// Listing 1), and run an RDMA ping-pong between its two pods over the
// job's private Virtual Network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/libfabric"
	"github.com/caps-sim/shs-k8s/internal/mpi"
	"github.com/caps-sim/shs-k8s/internal/stack"
	"github.com/caps-sim/shs-k8s/internal/vniapi"
)

func main() {
	// 1. Assemble the deployment: fabric + CXI NICs + CNI chain +
	//    Kubernetes + VNI service (DESIGN.md §3).
	st := stack.New(stack.DefaultOptions())
	st.Cluster.CreateNamespace("quickstart")
	fmt.Println("cluster up: 2 nodes, VNI service installed")

	// 2. Submit a two-pod job requesting Slingshot access. The single
	//    annotation is the entire user-facing interface.
	job := &k8s.Job{
		Meta: k8s.Meta{
			Kind: k8s.KindJob, Namespace: "quickstart", Name: "pingpong",
			Annotations: map[string]string{vniapi.Annotation: "true"},
		},
		Spec: k8s.JobSpec{
			Parallelism: 2,
			Template:    k8s.PodSpec{Image: "pingpong:latest", RunDuration: time.Hour},
		},
	}
	st.Cluster.SubmitJob(job)

	// 3. Wait for the pods; the scheduler spreads them across both nodes.
	for i := 0; i < 100; i++ {
		st.Eng.RunFor(200 * time.Millisecond)
		if running(st) == 2 {
			break
		}
	}
	if running(st) != 2 {
		log.Fatal("pods did not start")
	}

	// 4. Read the VNI the service assigned to the job.
	vni := jobVNI(st)
	fmt.Printf("job admitted, VNI service assigned VNI %d\n", vni)

	// 5. Open an RDMA domain inside each pod. Authentication is by the
	//    pod's network namespace — no UID/GID involved.
	var doms []*libfabric.Domain
	for _, obj := range st.Cluster.Client.Lister(k8s.KindPod).List("quickstart") {
		pod := obj.(*k8s.Pod)
		node, _ := st.NodeByName(pod.Spec.NodeName)
		proc, err := node.Runtime.Exec(pod.Meta.Namespace, pod.Meta.Name, "rank", 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		d, err := libfabric.OpenDomain(st.Eng, libfabric.Info{
			Device: node.Device, Caller: proc.PID, VNI: vni, TC: fabric.TCLowLatency})
		if err != nil {
			log.Fatal(err)
		}
		doms = append(doms, d)
		fmt.Printf("  pod %s on %s: RDMA endpoint %v\n", pod.Meta.Name, pod.Spec.NodeName, d.Addr())
	}

	// 6. Ping-pong: 1000 round trips of 8 B.
	comm, err := mpi.Connect(st.Eng, doms...)
	if err != nil {
		log.Fatal(err)
	}
	const rounds = 1000
	done := 0
	start := st.Eng.Now()
	var round func()
	round = func() {
		if done >= rounds {
			return
		}
		comm.Ranks[1].Recv(func(sz int) { comm.Ranks[1].Isend(sz, nil) })
		comm.Ranks[0].SendRecv(8, func(int) {
			done++
			round()
		})
	}
	st.Eng.After(0, round)
	for done < rounds && st.Eng.Step() {
	}
	rtt := st.Eng.Now().Sub(start) / rounds
	fmt.Printf("pingpong: %d round trips, avg RTT %v (one-way latency ~%v)\n",
		rounds, rtt, rtt/2)

	// 7. Tear down: deleting the job releases the VNI (after the 30 s
	//    quarantine it becomes reusable).
	st.Cluster.Client.Delete(k8s.KindJob, "quickstart", "pingpong")
	st.Eng.RunFor(30 * time.Second)
	stats := st.DB.Stats()
	fmt.Printf("job deleted: %d VNIs allocated, %d quarantined\n", stats.Allocated, stats.Quarantined)
}

func running(st *stack.Stack) int {
	n := 0
	for _, obj := range st.Cluster.Client.Lister(k8s.KindPod).List("quickstart") {
		if obj.(*k8s.Pod).Status.Phase == k8s.PodRunning {
			n++
		}
	}
	return n
}

func jobVNI(st *stack.Stack) fabric.VNI {
	for _, obj := range st.Cluster.Client.Lister(vniapi.KindVNI).List("quickstart") {
		cr := obj.(*k8s.Custom)
		if cr.Spec[vniapi.SpecJob] == "pingpong" {
			v, err := strconv.ParseUint(cr.Spec[vniapi.SpecVNI], 10, 32)
			if err != nil {
				log.Fatal(err)
			}
			return fabric.VNI(v)
		}
	}
	log.Fatal("no VNI CRD instance for job")
	return 0
}
