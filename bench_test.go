// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV), plus ablations for the design choices called out in DESIGN.md §5.
//
// Each figure benchmark executes the corresponding harness experiment and,
// on the first iteration, prints the figure's data rows (the same series
// the paper plots) so `go test -bench . | tee bench_output.txt` records a
// full paper-vs-measured artefact. Headline numbers are also exported as
// custom benchmark metrics.
package shsk8s

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/caps-sim/shs-k8s/internal/cxi"
	"github.com/caps-sim/shs-k8s/internal/fabric"
	"github.com/caps-sim/shs-k8s/internal/harness"
	"github.com/caps-sim/shs-k8s/internal/k8s"
	"github.com/caps-sim/shs-k8s/internal/libcxi"
	"github.com/caps-sim/shs-k8s/internal/nsmodel"
	"github.com/caps-sim/shs-k8s/internal/perfsuite"
	"github.com/caps-sim/shs-k8s/internal/scenario"
	"github.com/caps-sim/shs-k8s/internal/sim"
	"github.com/caps-sim/shs-k8s/internal/stack"
	"github.com/caps-sim/shs-k8s/internal/vnidb"
)

// TestScenarioQuickstartSmoke runs the bundled quickstart scenario (the
// shssim front door) twice: it must pass every assertion and produce
// identical results both times — the determinism contract every other
// scenario builds on.
func TestScenarioQuickstartSmoke(t *testing.T) {
	var results []*scenario.Result
	for i := 0; i < 2; i++ {
		sc, err := scenario.ParseFile("scenarios/quickstart.yaml")
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		res := scenario.Run(sc)
		if res.Err != nil {
			t.Fatalf("run: %v", res.Err)
		}
		if !res.Passed() {
			for _, a := range res.Asserts {
				t.Logf("%s", a)
			}
			t.Fatal("quickstart scenario failed")
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0].Asserts, results[1].Asserts) {
		t.Errorf("runs differ:\n%v\n%v", results[0].Asserts, results[1].Asserts)
	}
}

var printOnce sync.Map

// printFigure emits the figure's table exactly once per benchmark name.
func printFigure(name string, render func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Fprintf(os.Stdout, "\n===== %s =====\n", name)
	render()
	fmt.Fprintln(os.Stdout)
}

// benchRuns trades repetitions for benchmark wall time; EXPERIMENTS.md
// records a full-fidelity run with the paper's repetition counts.
const benchRuns = 3

// BenchmarkTable1_Versions regenerates Table I (software inventory).
func BenchmarkTable1_Versions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printFigure("Table I: Software versions", func() {
			harness.RenderTable1(os.Stdout)
		})
		_ = harness.Table1()
	}
}

func commFigure(b *testing.B, kind harness.BenchKind, seed int64) *harness.CommFigure {
	b.Helper()
	fig, err := harness.RunCommFigure(kind, benchRuns, seed)
	if err != nil {
		b.Fatal(err)
	}
	return fig
}

// BenchmarkFig5_OsuBw regenerates Figure 5: average throughput via osu_bw
// for vni:true, vni:false and host.
func BenchmarkFig5_OsuBw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := commFigure(b, harness.BenchBw, 1)
		printFigure("Figure 5: Average Throughput via osu_bw", func() {
			harness.RenderCommValues(os.Stdout, fig, "MB/s")
		})
		b.ReportMetric(fig.MaxAbsOverheadPct(harness.ModeVNITrue), "maxovh%")
	}
}

// BenchmarkFig6_BwOverhead regenerates Figure 6: throughput overhead with
// p10/p90 bands; the paper's claim is overhead within 1%.
func BenchmarkFig6_BwOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := commFigure(b, harness.BenchBw, 101)
		printFigure("Figure 6: Average Throughput Overhead via osu_bw", func() {
			harness.RenderCommOverhead(os.Stdout, fig)
		})
		b.ReportMetric(fig.MaxAbsOverheadPct(harness.ModeVNITrue), "vnitrue_maxovh%")
		b.ReportMetric(fig.MaxAbsOverheadPct(harness.ModeVNIFalse), "vnifalse_maxovh%")
	}
}

// BenchmarkFig7_OsuLatency regenerates Figure 7: average latency via
// osu_latency.
func BenchmarkFig7_OsuLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := commFigure(b, harness.BenchLatency, 2)
		printFigure("Figure 7: Average Latency via osu_latency", func() {
			harness.RenderCommValues(os.Stdout, fig, "us")
		})
		b.ReportMetric(fig.MaxAbsOverheadPct(harness.ModeVNITrue), "maxovh%")
	}
}

// BenchmarkFig8_LatencyOverhead regenerates Figure 8: latency overhead with
// p10/p90 bands.
func BenchmarkFig8_LatencyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := commFigure(b, harness.BenchLatency, 202)
		printFigure("Figure 8: Average Latency Overhead via osu_latency", func() {
			harness.RenderCommOverhead(os.Stdout, fig)
		})
		b.ReportMetric(fig.MaxAbsOverheadPct(harness.ModeVNITrue), "vnitrue_maxovh%")
	}
}

func admissionFigure(b *testing.B, p harness.LoadPattern, seed int64) *harness.AdmissionFigure {
	b.Helper()
	fig, err := harness.RunAdmissionFigure(p, benchRuns, seed)
	if err != nil {
		b.Fatal(err)
	}
	return fig
}

// BenchmarkFig9_RampRunningJobs regenerates Figure 9: running jobs over
// time during the ramp test.
func BenchmarkFig9_RampRunningJobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := admissionFigure(b, harness.PatternRamp, 3)
		printFigure("Figure 9: Running Jobs during Ramp Test", func() {
			harness.RenderRunningJobs(os.Stdout, fig)
		})
		b.ReportMetric(fig.MedianOverheadPct(), "medianovh%")
	}
}

// BenchmarkFig10_RampAdmissionDelay regenerates Figure 10: admission delay
// per submission batch.
func BenchmarkFig10_RampAdmissionDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := admissionFigure(b, harness.PatternRamp, 303)
		printFigure("Figure 10: Job Admission Delay per Batch (Ramp)", func() {
			harness.RenderAdmissionDelayPerBatch(os.Stdout, fig)
		})
		b.ReportMetric(fig.MedianOverheadPct(), "medianovh%")
	}
}

// BenchmarkFig11_SpikeRunningJobs regenerates Figure 11: running jobs over
// time during the 500-job spike test.
func BenchmarkFig11_SpikeRunningJobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := admissionFigure(b, harness.PatternSpike, 4)
		printFigure("Figure 11: Running Jobs during Spike Test", func() {
			harness.RenderRunningJobs(os.Stdout, fig)
		})
		b.ReportMetric(fig.MedianOverheadPct(), "medianovh%")
	}
}

// BenchmarkFig12_AdmissionBoxplots regenerates Figure 12: admission-delay
// boxplots for ramp and spike; the paper reports median overheads of 3.5%
// and 1.6% respectively.
func BenchmarkFig12_AdmissionBoxplots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ramp := admissionFigure(b, harness.PatternRamp, 5)
		spike := admissionFigure(b, harness.PatternSpike, 6)
		printFigure("Figure 12: Admission Delay Boxplots (Ramp + Spike)", func() {
			harness.RenderAdmissionBoxplot(os.Stdout, ramp)
			harness.RenderAdmissionBoxplot(os.Stdout, spike)
		})
		b.ReportMetric(ramp.MedianOverheadPct(), "ramp_ovh%")
		b.ReportMetric(spike.MedianOverheadPct(), "spike_ovh%")
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_AuthAtEPCreation measures the Slingshot model: pay
// authentication once at endpoint allocation, then an auth-free data path.
func BenchmarkAblation_AuthAtEPCreation(b *testing.B) {
	st := stack.New(stack.DefaultOptions())
	proc, err := st.Kernel.Spawn("bench", 0, 0, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	h := libcxi.Open(st.Nodes[0].Device, proc.PID)
	ep, err := h.EPAllocAuto(1, fabric.TCDedicated)
	if err != nil {
		b.Fatal(err)
	}
	dst := st.Nodes[1].Device.Addr()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Eng.After(0, func() {
			if err := ep.Send(dst, 1, 64, nil); err != nil {
				b.Fatal(err)
			}
		})
		st.Eng.Run()
	}
}

// BenchmarkAblation_PerMessageAuth is the strawman: re-authenticate (scan
// services, allocate, send, close) on every message — what a naive
// integration without kernel-bypass-compatible auth would pay.
func BenchmarkAblation_PerMessageAuth(b *testing.B) {
	st := stack.New(stack.DefaultOptions())
	proc, err := st.Kernel.Spawn("bench", 0, 0, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	h := libcxi.Open(st.Nodes[0].Device, proc.PID)
	dst := st.Nodes[1].Device.Addr()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep, err := h.EPAllocAuto(1, fabric.TCDedicated)
		if err != nil {
			b.Fatal(err)
		}
		st.Eng.After(0, func() {
			if err := ep.Send(dst, 1, 64, nil); err != nil {
				b.Fatal(err)
			}
		})
		st.Eng.Run()
		ep.Close()
	}
}

// BenchmarkAblation_VNIQuarantine sweeps the release-quarantine window,
// measuring allocator throughput under churn. Zero quarantine is fastest
// but unsafe (see vnidb's TOCTOU/straggler tests); 30 s matches the paper.
func BenchmarkAblation_VNIQuarantine(b *testing.B) {
	for _, q := range []time.Duration{0, 10 * time.Second, 30 * time.Second} {
		b.Run(fmt.Sprintf("quarantine=%s", q), func(b *testing.B) {
			db := vnidb.Open(vnidb.Options{MinVNI: 1, MaxVNI: 4096, Quarantine: q})
			now := sim.Time(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(50 * time.Millisecond)
				err := db.Update(func(tx *vnidb.Tx) error {
					v, err := tx.Acquire("owner", now)
					if err != nil {
						return err
					}
					return tx.Release(v, now)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_TxVsUnsafeAcquire compares the transactional allocator
// with the non-transactional check-then-insert strawman, which
// double-allocates under concurrency (proven by
// vnidb.TestUnsafeAllocatorExhibitsTOCTOU) and scans from the pool start on
// every call.
func BenchmarkAblation_TxVsUnsafeAcquire(b *testing.B) {
	b.Run("transactional", func(b *testing.B) {
		db := vnidb.Open(vnidb.Options{MinVNI: 1, MaxVNI: 1 << 20})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := db.Update(func(tx *vnidb.Tx) error {
				_, err := tx.Acquire("o", 0)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsafe", func(b *testing.B) {
		db := vnidb.Open(vnidb.Options{MinVNI: 1, MaxVNI: 1 << 20})
		ua := vnidb.NewUnsafeAllocator(db, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ua.Acquire("o", 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ChainedCNIAdd measures the pod ADD path with the CXI
// plugin chained after the overlay versus the overlay alone — the cost of
// the paper's chained deployment mode.
func BenchmarkAblation_ChainedCNIAdd(b *testing.B) {
	run := func(b *testing.B, vni bool) {
		st := stack.New(stack.DefaultOptions())
		st.Cluster.CreateNamespace("bench")
		var ann map[string]string
		if vni {
			ann = map[string]string{"vni": "true"}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := k8s.UniqueJobName("cni")
			job := k8s.EchoJob("bench", name, ann)
			job.Spec.DeleteAfterFinished = false
			submitted := st.Eng.Now()
			st.Cluster.SubmitJob(job)
			for {
				st.Eng.RunFor(100 * time.Millisecond)
				if j, ok := st.Cluster.Job("bench", name); ok && j.Status.Completed {
					break
				}
			}
			b.ReportMetric(st.Eng.Now().Sub(submitted).Seconds()*1000/float64(i+1), "simms/job")
		}
	}
	b.Run("overlay-only", func(b *testing.B) { run(b, false) })
	b.Run("overlay+cxi", func(b *testing.B) { run(b, true) })
}

// --- Micro-benchmarks of hot control-plane paths ---

// BenchmarkEPAllocAuth measures the driver's authenticated endpoint
// allocation (the once-per-application cost of the paper's model).
func BenchmarkEPAllocAuth(b *testing.B) {
	eng := sim.NewEngine(1)
	kern := nsmodel.NewKernel()
	sw := fabric.NewSwitch("s", eng, fabric.DefaultConfig())
	dev := cxi.NewDevice("cxi0", eng, kern, sw, cxi.DefaultDeviceConfig())
	root, _ := kern.Spawn("root", 0, 0, 0, 0)
	ns := kern.NewNetNS("pod")
	proc, _ := kern.Spawn("app", 0, 0, ns.Inode, 0)
	id, err := dev.SvcAlloc(root.PID, cxi.SvcDesc{
		Name: "b", Restricted: true,
		Members: []cxi.Member{cxi.NetNSMember(ns.Inode)},
		VNIs:    []fabric.VNI{9},
		Limits:  cxi.ResourceLimits{MaxTXQs: 1 << 30, MaxEQs: 1 << 30, MaxCTs: 1 << 30},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep, err := dev.EPAlloc(proc.PID, id, 9, fabric.TCDedicated)
		if err != nil {
			b.Fatal(err)
		}
		ep.Close()
	}
}

// BenchmarkSwitchForward measures per-packet switch forwarding including
// the VNI admission check.
func BenchmarkSwitchForward(b *testing.B) {
	eng := sim.NewEngine(1)
	sw := fabric.NewSwitch("s", eng, fabric.DefaultConfig())
	type sink struct{}
	recv := fabric.Receiver(nullReceiver{})
	a := sw.Attach(recv)
	c := sw.Attach(recv)
	_ = sw.GrantVNI(a, 5)
	_ = sw.GrantVNI(c, 5)
	link := fabric.NewHostLink(eng, sw)
	_ = sink{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(0, func() {
			link.Send(&fabric.Packet{Src: a, Dst: c, VNI: 5, TC: fabric.TCDedicated, PayloadBytes: 64, Frames: 1})
		})
		eng.Run()
	}
}

type nullReceiver struct{}

func (nullReceiver) ReceivePacket(*fabric.Packet) {}

// BenchmarkVNIDBAcquireRelease measures one allocate/release transaction
// pair, the endpoint's hot path.
func BenchmarkVNIDBAcquireRelease(b *testing.B) {
	db := vnidb.Open(vnidb.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(time.Duration(i) * time.Second) // outlive the quarantine
		err := db.Update(func(tx *vnidb.Tx) error {
			v, err := tx.Acquire("o", now)
			if err != nil {
				return err
			}
			return tx.Release(v, now)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_TrafficClassIsolation measures the use-case-(1)
// scenario: a latency-critical victim with and without traffic-class
// separation from a bulk (checkpointing) stream. Reported metrics are the
// victim's median one-way latency in each scenario.
func BenchmarkExtension_TrafficClassIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := harness.DefaultTCOptions()
		res, err := harness.RunTrafficClassExperiment(opts)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Extension: Traffic-Class Interference", func() {
			harness.RenderTrafficClasses(os.Stdout, res)
		})
		for _, r := range res {
			switch r.Scenario {
			case "ll+bulk":
				b.ReportMetric(r.LatencyUs.P50, "ll+bulk_p50us")
			case "bulk+bulk":
				b.ReportMetric(r.LatencyUs.P50, "bulk+bulk_p50us")
			}
		}
	}
}

// BenchmarkExtension_OverlayVsRDMA quantifies the paper's §II-D premise:
// the overlay datapath (veth/VXLAN/kernel TCP) versus Slingshot RDMA under
// the same workload. Reported metrics are the latency and bandwidth factors
// at 1 MB.
func BenchmarkExtension_OverlayVsRDMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunOverlayComparison(1, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Extension: Overlay vs Slingshot RDMA (paper §II-D premise)", func() {
			harness.RenderOverlayComparison(os.Stdout, rows)
		})
		last := rows[len(rows)-1]
		b.ReportMetric(last.LatencyFactor(), "lat_factor")
		b.ReportMetric(last.BandwidthFactor(), "bw_factor")
	}
}

// --- Control-plane fleet-scale benchmarks (typed client API) ---

// benchControlPlane pushes `jobs` vni:true jobs through the full admission
// pipeline — job controller, VNI webhook sync, pod gate, scheduler
// placement, kubelet, CNI ADD — on an 8-node fleet, and reports the real
// (wall-clock) cost per job. Every hot-path read goes through informer
// listers and indexes, so per-job cost stays near-flat as the fleet grows;
// the seed's APIServer.List copy-scans (scheduler, gate, CNI) made it grow
// linearly with fleet size.
func benchControlPlane(b *testing.B, jobs int) {
	for i := 0; i < b.N; i++ {
		opts := stack.DefaultOptions()
		opts.Nodes = 8
		// Uncap the job controller's client-side rate limiter: the subject
		// here is control-plane asymptotics, not the QPS model.
		opts.Cluster.JobCtl.MaxQPS = 0
		st := stack.New(opts)
		st.Cluster.CreateNamespace("fleet")
		completed := make(map[string]bool, jobs)
		st.Cluster.Client.Watch(k8s.KindJob, k8s.WatchOptions{}, func(ev k8s.Event) {
			job := ev.Object.(*k8s.Job)
			if ev.Type != k8s.EventDeleted && job.Status.Completed {
				completed[job.Meta.Key()] = true
			}
		})
		for j := 0; j < jobs; j++ {
			job := k8s.EchoJob("fleet", fmt.Sprintf("cp-%05d", j),
				map[string]string{"vni": "true"})
			job.Spec.DeleteAfterFinished = false
			st.Cluster.SubmitJob(job)
		}
		deadline := st.Eng.Now().Add(2 * time.Hour)
		ok := st.Eng.RunUntilDone(func() bool { return len(completed) >= jobs }, deadline)
		if !ok {
			b.Fatalf("only %d/%d jobs completed", len(completed), jobs)
		}
		b.ReportMetric(st.Eng.Now().Seconds()/float64(jobs), "simsec/job")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs), "wallns/job")
}

// BenchmarkControlPlane_Pods100 etc. demonstrate the client redesign's
// asymptotic win at three fleet scales (see EXPERIMENTS.md for recorded
// per-job costs).
func BenchmarkControlPlane_Pods100(b *testing.B)  { benchControlPlane(b, 100) }
func BenchmarkControlPlane_Pods1000(b *testing.B) { benchControlPlane(b, 1000) }
func BenchmarkControlPlane_Pods5000(b *testing.B) { benchControlPlane(b, 5000) }

// BenchmarkControlPlane_ListVsLister isolates the read path the redesign
// replaced: finding one job's pods among 5000 via the API server's
// deep-copy List scan versus the informer's pods-by-job index.
func BenchmarkControlPlane_ListVsLister(b *testing.B) {
	const pods = 5000
	eng := sim.NewEngine(1)
	api := k8s.NewAPIServer(eng, k8s.DefaultAPILatency())
	cli := api.Client()
	informer := cli.Informer(k8s.KindPod)
	informer.AddIndex(k8s.IndexPodJob, k8s.PodJobIndex)
	lister := informer.Lister()
	for i := 0; i < pods; i++ {
		api.Create(&k8s.Pod{Meta: k8s.Meta{
			Kind: k8s.KindPod, Namespace: "fleet", Name: fmt.Sprintf("p-%05d", i),
			Labels: map[string]string{"job-name": fmt.Sprintf("job-%04d", i%500)},
		}})
	}
	eng.Run()
	const wantJob = "fleet/job-0042"
	match := func(objs []k8s.Object) int {
		n := 0
		for _, obj := range objs {
			if obj.(*k8s.Pod).Meta.Labels["job-name"] == "job-0042" {
				n++
			}
		}
		return n
	}
	b.Run("apiserver-copy-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if match(api.List(k8s.KindPod, "fleet")) != pods/500 {
				b.Fatal("wrong match count")
			}
		}
	})
	b.Run("lister-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if match(lister.ByIndex(k8s.IndexPodJob, wantJob)) != pods/500 {
				b.Fatal("wrong match count")
			}
		}
	})
}

// BenchmarkCollectives is the `go test` face of the canonical
// perfsuite.Collectives case (compact placement-sensitivity sweep; the
// BENCH_*.json trajectory tracks its allocs and worst_spill_x). The
// pattern × placement table the CI log relies on is printed once,
// untimed, from an identical deterministic same-seed sweep so rendering
// I/O never contaminates the measurement. The full grid is `shsbench
// -exp collectives`; EXPERIMENTS.md records it.
func BenchmarkCollectives(b *testing.B) {
	perfsuite.Collectives(b)
	b.StopTimer()
	printFigure("Extension: Collectives vs Placement (64 KiB)", func() {
		rows, err := harness.RunCollectivesSweep(perfsuite.CollectivesSweepConfig())
		if err != nil {
			b.Fatal(err)
		}
		harness.RenderCollectives(os.Stdout, rows)
	})
}
