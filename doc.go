// Package shsk8s is a from-scratch Go reproduction of "Closing the
// HPC-Cloud Convergence Gap: Multi-Tenant Slingshot RDMA for Kubernetes"
// (Friese et al., IEEE CLUSTER 2025): secure, container-granular,
// multi-tenant access to Slingshot RDMA networking under Kubernetes.
//
// The public entry points live under internal/ (this is a research
// reproduction, versioned as a whole): see internal/stack to assemble a
// full simulated deployment, internal/vnisvc for the VNI Service,
// internal/cni for the CXI CNI plugin, and internal/harness for the
// paper's evaluation. The top-level bench_test.go regenerates every table
// and figure of the paper's evaluation section; see DESIGN.md and
// EXPERIMENTS.md.
package shsk8s
